"""Lazy-collection solution state (optimization 1 of Section III).

The eager :class:`~repro.core.state.MISState` maintains ``I(v)`` sets and the
hierarchical ``¯I_j(S)`` buckets explicitly so they can be queried in O(1).
The lazy variant only keeps the membership set and the integer ``count(v)``
per non-solution vertex; everything else is *recomputed on demand* by scanning
the relevant neighbourhoods.  As the paper observes, this slashes memory and
even improves wall-clock time for small ``k``, at the price of losing the
worst-case time bound (and getting slower as ``k`` grows) — exactly the
trade-off evaluated in Fig 7.

The class exposes the same interface as :class:`MISState`, so every
maintenance algorithm can be instantiated on either state by passing
``lazy=True``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.core.state import CountEvent, StateStatistics
from repro.exceptions import SolutionInvariantError
from repro.graphs.dynamic_graph import DynamicGraph, Vertex


class LazyMISState:
    """Count-only bookkeeping of an independent set over a dynamic graph.

    Interface-compatible with :class:`repro.core.state.MISState`; see that
    class for method semantics.
    """

    def __init__(self, graph: DynamicGraph, k: int = 1) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self.graph = graph
        self.k = k
        self._in_solution: Set[Vertex] = set()
        self._count: Dict[Vertex, int] = {v: 0 for v in graph.vertices()}
        self.stats = StateStatistics()

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def solution_size(self) -> int:
        return len(self._in_solution)

    def solution(self) -> Set[Vertex]:
        return set(self._in_solution)

    def solution_view(self) -> Set[Vertex]:
        """Return the live membership set (read-only for callers)."""
        return self._in_solution

    def is_in_solution(self, vertex: Vertex) -> bool:
        return vertex in self._in_solution

    def count(self, vertex: Vertex) -> int:
        if vertex in self._in_solution:
            return 0
        return self._count[vertex]

    def counts_view(self) -> Dict[Vertex, int]:
        """Return the live ``count`` dictionary (read-only for callers).

        Solution vertices always carry a stored count of 0 (moving in
        requires count 0 and no later mutation touches a member's own
        counter), so this agrees with :meth:`count` on every vertex.
        """
        return self._count

    def solution_neighbors(self, vertex: Vertex) -> Set[Vertex]:
        """Recompute ``I(v)`` by scanning the neighbourhood of ``vertex``."""
        if vertex in self._in_solution:
            return set()
        return {n for n in self.graph.neighbors(vertex) if n in self._in_solution}

    def solution_neighbors_view(self, vertex: Vertex) -> Set[Vertex]:
        """Interface parity with :class:`MISState`; lazily recomputed, so the
        result is a fresh set rather than a live view."""
        return self.solution_neighbors(vertex)

    def tight1_view(self, owner: Vertex) -> Set[Vertex]:
        """Recompute ``¯I_1({owner})`` (no stored buckets to expose lazily)."""
        return self.tight_vertices(frozenset((owner,)), 1)

    def tight_view(self, owners: FrozenSet[Vertex], level: int) -> Set[Vertex]:
        """Interface parity with :class:`MISState.tight_view`."""
        return self.tight_vertices(owners, level)

    def tight_vertices(self, owners: FrozenSet[Vertex], level: int) -> Set[Vertex]:
        """Recompute ``¯I_level(owners)`` by scanning the owners' neighbourhoods."""
        if level != len(owners):
            raise ValueError("level must equal the size of the owner set")
        if level > self.k:
            raise ValueError(f"level {level} exceeds tracked k={self.k}")
        result: Set[Vertex] = set()
        for owner in owners:
            if not self.graph.has_vertex(owner):
                continue
            for v in self.graph.neighbors(owner):
                if v in self._in_solution:
                    continue
                if self._count.get(v) == level and self.solution_neighbors(v) == owners:
                    result.add(v)
        return result

    def tight_up_to(self, owners: FrozenSet[Vertex], level: int) -> Set[Vertex]:
        """Recompute ``¯I_{≤level}(owners)`` by scanning the owners' neighbourhoods."""
        if level > self.k:
            raise ValueError(f"level {level} exceeds tracked k={self.k}")
        owner_set = set(owners)
        result: Set[Vertex] = set()
        for owner in owners:
            if not self.graph.has_vertex(owner):
                continue
            for v in self.graph.neighbors(owner):
                if v in self._in_solution:
                    continue
                c = self._count.get(v, 0)
                if 1 <= c <= level and self.solution_neighbors(v) <= owner_set:
                    result.add(v)
        return result

    def nonsolution_vertices_with_count(self, level: int) -> Set[Vertex]:
        """Scan all vertices for the requested count (lazy: O(n))."""
        if level > self.k:
            raise ValueError(f"level {level} exceeds tracked k={self.k}")
        return {
            v
            for v, c in self._count.items()
            if c == level and v not in self._in_solution
        }

    def structure_size(self) -> int:
        """Memory proxy: only the membership set and one counter per vertex."""
        return len(self._in_solution) + len(self._count)

    # ------------------------------------------------------------------ #
    # Solution mutation
    # ------------------------------------------------------------------ #
    def move_in(self, vertex: Vertex, *, collect_events: bool = True) -> List[CountEvent]:
        if vertex in self._in_solution:
            raise SolutionInvariantError(f"{vertex!r} is already in the solution")
        if self._count[vertex] != 0:
            raise SolutionInvariantError(
                f"cannot MOVEIN {vertex!r}: count is {self._count[vertex]}"
            )
        self.stats.move_in_calls += 1
        self._in_solution.add(vertex)
        events: List[CountEvent] = []
        counts = self._count
        touched = 0
        for nbr in self.graph.neighbors(vertex):
            old = counts[nbr]
            counts[nbr] = old + 1
            touched += 1
            if collect_events:
                events.append((nbr, old, old + 1))
        self.stats.count_updates += touched
        return events

    def move_out(self, vertex: Vertex, *, collect_events: bool = True) -> List[CountEvent]:
        if vertex not in self._in_solution:
            raise SolutionInvariantError(f"{vertex!r} is not in the solution")
        self.stats.move_out_calls += 1
        self._in_solution.discard(vertex)
        events: List[CountEvent] = []
        in_solution = self._in_solution
        counts = self._count
        own_count = 0
        touched = 0
        for nbr in self.graph.neighbors(vertex):
            if nbr in in_solution:
                own_count += 1
                continue
            old = counts[nbr]
            counts[nbr] = old - 1
            touched += 1
            if collect_events:
                events.append((nbr, old, old - 1))
        self.stats.count_updates += touched
        self._count[vertex] = own_count
        return events

    # ------------------------------------------------------------------ #
    # Structural mutation
    # ------------------------------------------------------------------ #
    def add_vertex(self, vertex: Vertex, neighbors: Iterable[Vertex]) -> int:
        self.graph.add_vertex(vertex)
        for nbr in neighbors:
            self.graph.add_edge(vertex, nbr)
        count = sum(1 for n in self.graph.neighbors(vertex) if n in self._in_solution)
        self._count[vertex] = count
        return count

    def remove_vertex(self, vertex: Vertex) -> Tuple[bool, Set[Vertex], List[CountEvent]]:
        was_in_solution = vertex in self._in_solution
        events: List[CountEvent] = []
        # The graph hands back its own popped adjacency set — no copy needed.
        neighbors = self.graph.remove_vertex(vertex)
        if was_in_solution:
            self._in_solution.discard(vertex)
            for nbr in neighbors:
                if nbr in self._in_solution:
                    continue
                old = self._count[nbr]
                self._count[nbr] = old - 1
                self.stats.count_updates += 1
                events.append((nbr, old, old - 1))
        self._count.pop(vertex, None)
        return was_in_solution, neighbors, events

    def add_edge(
        self, u: Vertex, v: Vertex, *, collect_events: bool = True
    ) -> List[CountEvent]:
        self.graph.add_edge(u, v)
        events: List[CountEvent] = []
        u_in, v_in = u in self._in_solution, v in self._in_solution
        if u_in and not v_in:
            old = self._count[v]
            self._count[v] = old + 1
            self.stats.count_updates += 1
            if collect_events:
                events.append((v, old, old + 1))
        elif v_in and not u_in:
            old = self._count[u]
            self._count[u] = old + 1
            self.stats.count_updates += 1
            if collect_events:
                events.append((u, old, old + 1))
        return events

    def remove_edge(self, u: Vertex, v: Vertex) -> List[CountEvent]:
        self.graph.remove_edge(u, v)
        events: List[CountEvent] = []
        u_in, v_in = u in self._in_solution, v in self._in_solution
        if u_in and not v_in:
            old = self._count[v]
            self._count[v] = old - 1
            self.stats.count_updates += 1
            events.append((v, old, old - 1))
        elif v_in and not u_in:
            old = self._count[u]
            self._count[u] = old - 1
            self.stats.count_updates += 1
            events.append((u, old, old - 1))
        return events

    # ------------------------------------------------------------------ #
    # Invariant checking
    # ------------------------------------------------------------------ #
    def check_invariants(self) -> None:
        for v in self._in_solution:
            if not self.graph.has_vertex(v):
                raise SolutionInvariantError(f"solution vertex {v!r} missing from graph")
            conflict = self.graph.neighbors(v) & self._in_solution
            if conflict:
                raise SolutionInvariantError(
                    f"solution vertices {v!r} and {next(iter(conflict))!r} are adjacent"
                )
        for v in self.graph.vertices():
            if v in self._in_solution:
                continue
            expected = sum(1 for n in self.graph.neighbors(v) if n in self._in_solution)
            if self._count.get(v) != expected:
                raise SolutionInvariantError(
                    f"count({v!r}) is {self._count.get(v)!r} but the graph says {expected}"
                )

    def is_maximal(self) -> bool:
        for v in self.graph.vertices():
            if v not in self._in_solution and self._count.get(v, 0) == 0:
                return False
        return True
