"""Lazy-collection solution state (optimization 1 of Section III).

The eager :class:`~repro.core.state.MISState` maintains ``I(v)`` sets and the
hierarchical ``¯I_j(S)`` buckets explicitly so they can be queried in O(1).
The lazy variant only keeps the membership bytes and the integer ``count(v)``
per slot; everything else is *recomputed on demand* by scanning the relevant
neighbourhoods.  As the paper observes, this slashes memory and even improves
wall-clock time for small ``k``, at the price of losing the worst-case time
bound (and getting slower as ``k`` grows) — exactly the trade-off evaluated
in Fig 7.

Like the eager state, all storage is slot-indexed flat arrays (bytearray
membership, list counts), so the per-update inner loop does zero hashing.
The class exposes the same interface as :class:`MISState` — including the
``*_slot`` hot-path methods — so every maintenance algorithm can run on
either state by passing ``lazy=True``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.core import kernels
from repro.core.state import CountEvent, StateStatistics, _privatize_adj_pairs
from repro.exceptions import (
    EdgeExistsError,
    EdgeNotFoundError,
    GraphError,
    SelfLoopError,
    SolutionInvariantError,
)
from repro.graphs.dynamic_graph import DynamicGraph, Vertex


class LazyMISState:
    """Count-only bookkeeping of an independent set over a dynamic graph.

    Interface-compatible with :class:`repro.core.state.MISState`; see that
    class for method semantics.
    """

    def __init__(self, graph: DynamicGraph, k: int = 1) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self.graph = graph
        self.k = k
        n = graph.num_slots
        self._adj = graph.adjacency_slots_view()
        self._in_sol = bytearray(n)
        self._sol_slots: Set[int] = set()
        self._count: List[int] = [0] * n
        self.stats = StateStatistics()

    def _ensure_slot(self, slot: int) -> None:
        while len(self._count) <= slot:
            self._in_sol.append(0)
            self._count.append(0)

    def fork(self, graph_fork: DynamicGraph) -> "LazyMISState":
        """Return a fork of this state over ``graph_fork`` (see :meth:`MISState.fork`).

        The lazy state stores only flat scalar arrays, so its fork is pure
        memcpy-level copies; all structural sharing lives in the graph's
        adjacency CoW (the inlined mutators below honour its bitmap).
        """
        clone = object.__new__(type(self))
        clone.graph = graph_fork
        clone.k = self.k
        clone._adj = graph_fork.adjacency_slots_view()
        clone._in_sol = bytearray(self._in_sol)
        clone._sol_slots = set(self._sol_slots)
        clone._count = list(self._count)
        clone.stats = StateStatistics(
            move_in_calls=self.stats.move_in_calls,
            move_out_calls=self.stats.move_out_calls,
            count_updates=self.stats.count_updates,
        )
        return clone

    # ------------------------------------------------------------------ #
    # Queries (label boundary)
    # ------------------------------------------------------------------ #
    @property
    def solution_size(self) -> int:
        return len(self._sol_slots)

    def solution(self) -> Set[Vertex]:
        label = self.graph.labels_view()
        return {label[s] for s in self._sol_slots}

    def solution_view(self) -> Set[Vertex]:
        """Interface parity with :class:`MISState` (fresh label set)."""
        return self.solution()

    def is_in_solution(self, vertex: Vertex) -> bool:
        return bool(self._in_sol[self.graph.slot_of(vertex)])

    def count(self, vertex: Vertex) -> int:
        slot = self.graph.slot_of(vertex)
        if self._in_sol[slot]:
            return 0
        return self._count[slot]

    def counts_view(self) -> Dict[Vertex, int]:
        """Return ``{label: count}`` for every vertex of the graph.

        Solution vertices always carry a stored count of 0 (moving in
        requires count 0 and no later mutation touches a member's own
        counter), so this agrees with :meth:`count` on every vertex.
        """
        counts = self._count
        return {v: counts[s] for v, s in self.graph.slot_map_view().items()}

    def solution_neighbors(self, vertex: Vertex) -> Set[Vertex]:
        """Recompute ``I(v)`` by scanning the neighbourhood of ``vertex``."""
        label = self.graph.labels_view()
        return {label[t] for t in self.sn_slots_view(self.graph.slot_of(vertex))}

    def solution_neighbors_view(self, vertex: Vertex) -> Set[Vertex]:
        """Interface parity with :class:`MISState`; lazily recomputed, so the
        result is a fresh set rather than a live view."""
        return self.solution_neighbors(vertex)

    def tight_vertices(self, owners: FrozenSet[Vertex], level: int) -> Set[Vertex]:
        """Recompute ``¯I_level(owners)`` by scanning the owners' neighbourhoods."""
        if level != len(owners):
            raise ValueError("level must equal the size of the owner set")
        if level > self.k:
            raise ValueError(f"level {level} exceeds tracked k={self.k}")
        slot_map = self.graph.slot_map_view()
        label = self.graph.labels_view()
        owner_slots = frozenset(slot_map[v] for v in owners if v in slot_map)
        if len(owner_slots) != len(owners):
            # Some owner is gone; only surviving owners can dominate anything.
            return set()
        return {label[t] for t in self.tight_view(owner_slots, level)}

    def tight_up_to(self, owners: FrozenSet[Vertex], level: int) -> Set[Vertex]:
        """Recompute ``¯I_{≤level}(owners)`` by scanning the owners' neighbourhoods."""
        if level > self.k:
            raise ValueError(f"level {level} exceeds tracked k={self.k}")
        slot_map = self.graph.slot_map_view()
        label = self.graph.labels_view()
        owner_slots = frozenset(slot_map[v] for v in owners if v in slot_map)
        return {label[t] for t in self.tight_up_to_slots(owner_slots, level)}

    def nonsolution_vertices_with_count(self, level: int) -> Set[Vertex]:
        label = self.graph.labels_view()
        return {label[s] for s in self.nonsolution_slots_with_count(level)}

    def structure_size(self) -> int:
        """Memory proxy: only the membership set and one counter per vertex."""
        return len(self._sol_slots) + self.graph.num_vertices

    # ------------------------------------------------------------------ #
    # Queries (slot space — recomputed on demand)
    # ------------------------------------------------------------------ #
    def in_solution_view(self) -> bytearray:
        return self._in_sol

    def solution_slots_view(self) -> Set[int]:
        return self._sol_slots

    def counts_slots_view(self) -> List[int]:
        return self._count

    def count_slot(self, slot: int) -> int:
        if self._in_sol[slot]:
            return 0
        return self._count[slot]

    def sn_list_view(self) -> None:
        """No stored ``I(v)`` lists on the lazy state (see :class:`MISState`)."""
        return None

    def sn_slots_view(self, slot: int) -> Set[int]:
        """Recompute the ``I(v)`` neighbour-slot set (fresh set, not a view)."""
        if self._in_sol[slot]:
            return set()
        in_sol = self._in_sol
        return {t for t in self._adj[slot] if in_sol[t]}

    def tight1_view(self, owner_slot: int) -> Set[int]:
        """Recompute ``¯I_1({owner})`` (no stored buckets to expose lazily).

        A neighbour of ``owner`` with count 1 is dominated by ``owner`` alone,
        so no ``I(v)`` comparison is needed at level 1.
        """
        in_sol = self._in_sol
        counts = self._count
        return {
            t for t in self._adj[owner_slot] if counts[t] == 1 and not in_sol[t]
        }

    def tight_view(self, owner_slots: FrozenSet[int], level: int) -> Set[int]:
        """Recompute ``¯I_level(S)`` for an owner-slot set."""
        if level > self.k:
            raise ValueError(f"level {level} exceeds tracked k={self.k}")
        if level == 1:
            (owner,) = owner_slots
            return self.tight1_view(owner)
        in_sol = self._in_sol
        counts = self._count
        adj = self._adj
        result: Set[int] = set()
        for owner in owner_slots:
            for t in adj[owner]:
                if in_sol[t] or counts[t] != level or t in result:
                    continue
                if {x for x in adj[t] if in_sol[x]} == owner_slots:
                    result.add(t)
        return result

    def tight_up_to_slots(self, owner_slots: FrozenSet[int], level: int) -> Set[int]:
        """Recompute ``¯I_{≤level}(S)`` by scanning the owners' neighbourhoods."""
        if level > self.k:
            raise ValueError(f"level {level} exceeds tracked k={self.k}")
        in_sol = self._in_sol
        counts = self._count
        adj = self._adj
        result: Set[int] = set()
        for owner in owner_slots:
            for t in adj[owner]:
                if in_sol[t] or t in result:
                    continue
                c = counts[t]
                if 1 <= c <= level and {x for x in adj[t] if in_sol[x]} <= owner_slots:
                    result.add(t)
        return result

    def nonsolution_slots_with_count(self, level: int) -> Set[int]:
        """Scan all vertices for the requested count (lazy: O(n))."""
        if level > self.k:
            raise ValueError(f"level {level} exceeds tracked k={self.k}")
        in_sol = self._in_sol
        counts = self._count
        return {
            s for s in self.graph.slots() if counts[s] == level and not in_sol[s]
        }

    # ------------------------------------------------------------------ #
    # Solution mutation
    # ------------------------------------------------------------------ #
    def move_in(self, vertex: Vertex, *, collect_events: bool = True) -> List[CountEvent]:
        slot = self.graph.slot_of(vertex)
        self.move_in_slot(slot)
        if not collect_events:
            return []
        counts = self._count
        label = self.graph.labels_view()
        return [(label[t], counts[t] - 1, counts[t]) for t in self._adj[slot]]

    def move_out(self, vertex: Vertex, *, collect_events: bool = True) -> List[CountEvent]:
        slot = self.graph.slot_of(vertex)
        self.move_out_slot(slot)
        if not collect_events:
            return []
        counts = self._count
        in_sol = self._in_sol
        label = self.graph.labels_view()
        return [
            (label[t], counts[t] + 1, counts[t])
            for t in self._adj[slot]
            if not in_sol[t]
        ]

    def move_in_slot(self, slot: int) -> None:
        if self._in_sol[slot]:
            raise SolutionInvariantError(
                f"{self.graph.vertex_of(slot)!r} is already in the solution"
            )
        if self._count[slot] != 0:
            raise SolutionInvariantError(
                f"cannot MOVEIN {self.graph.vertex_of(slot)!r}: "
                f"count is {self._count[slot]}"
            )
        self.stats.move_in_calls += 1
        self._in_sol[slot] = 1
        self._sol_slots.add(slot)
        counts = self._count
        touched = 0
        for t in self._adj[slot]:
            counts[t] += 1
            touched += 1
        self.stats.count_updates += touched

    def move_out_slot(self, slot: int) -> None:
        if not self._in_sol[slot]:
            raise SolutionInvariantError(
                f"{self.graph.vertex_of(slot)!r} is not in the solution"
            )
        self.stats.move_out_calls += 1
        self._in_sol[slot] = 0
        self._sol_slots.discard(slot)
        in_sol = self._in_sol
        counts = self._count
        own_count = 0
        touched = 0
        for t in self._adj[slot]:
            if in_sol[t]:
                own_count += 1
                continue
            counts[t] -= 1
            touched += 1
        self.stats.count_updates += touched
        self._count[slot] = own_count

    # ------------------------------------------------------------------ #
    # Structural mutation
    # ------------------------------------------------------------------ #
    def add_vertex(self, vertex: Vertex, neighbors: Iterable[Vertex]) -> int:
        _slot, count = self.add_vertex_slot(vertex, neighbors)
        return count

    def add_vertex_slot(
        self, vertex: Vertex, neighbors: Iterable[Vertex]
    ) -> Tuple[int, int]:
        graph = self.graph
        slot = graph.add_vertex_slot(vertex)
        self._ensure_slot(slot)
        # Fused edge loop (inlines graph.add_edge_slots; see MISState).
        count = 0
        if neighbors:
            slot_of = graph.slot_of
            adj = self._adj
            adj_s = adj[slot]  # freshly allocated: _alloc made it private
            in_sol = self._in_sol
            gcow = graph._cow_adj
            n = 0
            for nbr in neighbors:
                t = slot_of(nbr)
                if t == slot:
                    raise SelfLoopError(vertex)
                if t in adj_s:
                    raise EdgeExistsError(vertex, nbr)
                adj_s.add(t)
                if gcow is not None and not gcow[t]:
                    adj[t] = set(adj[t])
                    gcow[t] = 1
                adj[t].add(slot)
                n += 1
                if in_sol[t]:
                    count += 1
            graph._num_edges += n
        self._count[slot] = count
        return slot, count

    def remove_vertex(self, vertex: Vertex) -> Tuple[bool, Set[Vertex], List[CountEvent]]:
        label = self.graph.labels_view()
        was_in, neighbor_slots = self.remove_vertex_slot(self.graph.slot_of(vertex))
        events: List[CountEvent] = []
        if was_in:
            counts = self._count
            in_sol = self._in_sol
            events = [
                (label[t], counts[t] + 1, counts[t])
                for t in neighbor_slots
                if not in_sol[t]
            ]
        return was_in, {label[t] for t in neighbor_slots}, events

    def remove_vertex_slot(self, slot: int) -> Tuple[bool, Set[int]]:
        was_in_solution = bool(self._in_sol[slot])
        # The graph hands over its own popped adjacency set — no copy needed.
        neighbor_slots = self.graph.pop_vertex_slot(slot)
        if was_in_solution:
            self._in_sol[slot] = 0
            self._sol_slots.discard(slot)
            in_sol = self._in_sol
            counts = self._count
            for t in neighbor_slots:
                if not in_sol[t]:
                    counts[t] -= 1
                    self.stats.count_updates += 1
        self._count[slot] = 0
        return was_in_solution, neighbor_slots

    def add_edge(
        self, u: Vertex, v: Vertex, *, collect_events: bool = True
    ) -> List[CountEvent]:
        slot_of = self.graph.slot_of
        su, sv = slot_of(u), slot_of(v)
        self.add_edge_slots(su, sv)
        if not collect_events:
            return []
        in_sol = self._in_sol
        counts = self._count
        if in_sol[su] and not in_sol[sv]:
            return [(v, counts[sv] - 1, counts[sv])]
        if in_sol[sv] and not in_sol[su]:
            return [(u, counts[su] - 1, counts[su])]
        return []

    def remove_edge(self, u: Vertex, v: Vertex) -> List[CountEvent]:
        slot_of = self.graph.slot_of
        su, sv = slot_of(u), slot_of(v)
        in_sol = self._in_sol
        u_in, v_in = in_sol[su], in_sol[sv]
        if u_in != v_in:
            label_out, s_out, s_in = (v, sv, su) if u_in else (u, su, sv)
            new = self.remove_edge_one_sided(s_out, s_in)
            return [(label_out, new + 1, new)]
        self.remove_edge_structural(su, sv)
        return []

    def add_edge_slots(self, su: int, sv: int) -> None:
        # Inlined graph.add_edge_slots (hot path; see MISState).
        if su == sv:
            raise SelfLoopError(self.graph.vertex_of(su))
        adj = self._adj
        adj_u = adj[su]
        if sv in adj_u:
            raise EdgeExistsError(self.graph.vertex_of(su), self.graph.vertex_of(sv))
        gcow = self.graph._cow_adj
        if gcow is not None:
            if not gcow[su]:
                adj[su] = adj_u = set(adj_u)
                gcow[su] = 1
            if not gcow[sv]:
                adj[sv] = set(adj[sv])
                gcow[sv] = 1
        adj_u.add(sv)
        adj[sv].add(su)
        self.graph._num_edges += 1
        in_sol = self._in_sol
        if in_sol[su]:
            if not in_sol[sv]:
                self._count[sv] += 1
                self.stats.count_updates += 1
        elif in_sol[sv]:
            self._count[su] += 1
            self.stats.count_updates += 1

    def remove_edge_structural(self, su: int, sv: int) -> None:
        """Delete an edge whose removal changes no count (neither or both endpoints in ``I``)."""
        # Inlined graph.remove_edge_slots (hot path; see MISState).
        adj = self._adj
        adj_u = adj[su]
        if sv not in adj_u:
            raise EdgeNotFoundError(self.graph.vertex_of(su), self.graph.vertex_of(sv))
        gcow = self.graph._cow_adj
        if gcow is not None:
            if not gcow[su]:
                adj[su] = adj_u = set(adj_u)
                gcow[su] = 1
            if not gcow[sv]:
                adj[sv] = set(adj[sv])
                gcow[sv] = 1
        adj_u.remove(sv)
        try:
            adj[sv].remove(su)
        except KeyError:
            raise GraphError(
                f"asymmetric adjacency: edge ({su}, {sv}) present only as "
                f"{su}->{sv}"
            ) from None
        self.graph._num_edges -= 1

    def remove_edge_one_sided(self, s_out: int, s_in: int) -> int:
        """Delete an edge with exactly ``s_in`` in the solution; return the new count of ``s_out``."""
        self.remove_edge_structural(s_out, s_in)
        counts = self._count
        counts[s_out] -= 1
        self.stats.count_updates += 1
        return counts[s_out]

    # ------------------------------------------------------------------ #
    # Bulk structural mutation (the batched update engine's hot path)
    # ------------------------------------------------------------------ #
    def add_edges_slots_bulk(
        self, pairs: List[Tuple[int, int]]
    ) -> Tuple[List[int], List[Tuple[int, int]]]:
        """Insert a run of edges in one pass; see :meth:`MISState.add_edges_slots_bulk`.

        Failure-atomic: the whole pair list is validated before any mutation.
        """
        adj = self._adj
        in_sol = self._in_sol
        counts = self._count
        graph = self.graph
        _privatize_adj_pairs(graph, adj, pairs)
        bumped: List[int] = []
        conflicts: List[Tuple[int, int]] = []
        if kernels.vectorizes(len(pairs)):
            cols = kernels.pair_columns(pairs)
            kernels.validate_edge_insertions(graph, adj, pairs, cols)
            one_sided, conflicts = kernels.classify_insertions(
                pairs, in_sol, cols
            )
            for su, sv in pairs:
                adj[su].add(sv)
                adj[sv].add(su)
            for out_slot, _sol_slot in one_sided:
                counts[out_slot] += 1
                bumped.append(out_slot)
        else:
            kernels.validate_edge_insertions(graph, adj, pairs)
            for su, sv in pairs:
                adj[su].add(sv)
                adj[sv].add(su)
                if in_sol[su]:
                    if in_sol[sv]:
                        conflicts.append((su, sv))
                    else:
                        counts[sv] += 1
                        bumped.append(sv)
                elif in_sol[sv]:
                    counts[su] += 1
                    bumped.append(su)
        graph._num_edges += len(pairs)
        self.stats.count_updates += len(bumped)
        return bumped, conflicts

    def remove_edges_slots_bulk(
        self, pairs: List[Tuple[int, int]]
    ) -> Tuple[List[int], List[Tuple[int, int]]]:
        """Delete a run of edges in one pass; see :meth:`MISState.remove_edges_slots_bulk`.

        Failure-atomic: the whole pair list is validated before any mutation.
        """
        adj = self._adj
        in_sol = self._in_sol
        counts = self._count
        graph = self.graph
        _privatize_adj_pairs(graph, adj, pairs)
        dropped: List[int] = []
        outside: List[Tuple[int, int]] = []
        remove = self._remove_pair_symmetric
        if kernels.vectorizes(len(pairs)):
            cols = kernels.pair_columns(pairs)
            kernels.validate_edge_deletions(graph, adj, pairs, cols)
            one_sided, outside = kernels.classify_deletions(
                pairs, in_sol, cols
            )
            for su, sv in pairs:
                remove(adj, su, sv)
            for out_slot, _sol_slot in one_sided:
                counts[out_slot] -= 1
                dropped.append(out_slot)
        else:
            kernels.validate_edge_deletions(graph, adj, pairs)
            for su, sv in pairs:
                remove(adj, su, sv)
                u_in = in_sol[su]
                if u_in != in_sol[sv]:
                    s_out, s_in = (sv, su) if u_in else (su, sv)
                    counts[s_out] -= 1
                    dropped.append(s_out)
                elif not u_in:
                    outside.append((su, sv))
        graph._num_edges -= len(pairs)
        self.stats.count_updates += len(dropped)
        return dropped, outside

    @staticmethod
    def _remove_pair_symmetric(adj, su: int, sv: int) -> None:
        """Drop both directions of a pre-validated edge, asserting symmetry."""
        adj[su].remove(sv)
        try:
            adj[sv].remove(su)
        except KeyError:
            raise GraphError(
                f"asymmetric adjacency: edge ({su}, {sv}) present only as "
                f"{su}->{sv}"
            ) from None

    # ------------------------------------------------------------------ #
    # Split bulk mutation (the sharded engine's intra-partition path)
    # ------------------------------------------------------------------ #
    # See MISState: structural apply + classification replay must be
    # byte-identical to one bulk call.  The lazy state has no stored I(v)
    # or hierarchy, so a replayed classification is just the count delta
    # with the same count_updates accounting as the bulk primitives.

    def add_edges_structural_bulk(self, pairs: List[Tuple[int, int]]) -> None:
        """Insert a run of edges with no count bookkeeping (validated, atomic)."""
        adj = self._adj
        kernels.validate_edge_insertions(self.graph, adj, pairs)
        _privatize_adj_pairs(self.graph, adj, pairs)
        for su, sv in pairs:
            adj[su].add(sv)
            adj[sv].add(su)
        self.graph._num_edges += len(pairs)

    def remove_edges_structural_bulk(self, pairs: List[Tuple[int, int]]) -> None:
        """Delete a run of edges with no count bookkeeping (validated, atomic)."""
        adj = self._adj
        kernels.validate_edge_deletions(self.graph, adj, pairs)
        _privatize_adj_pairs(self.graph, adj, pairs)
        remove = self._remove_pair_symmetric
        for su, sv in pairs:
            remove(adj, su, sv)
        self.graph._num_edges -= len(pairs)

    def note_solution_neighbors_added(
        self, pairs: Iterable[Tuple[int, int]]
    ) -> None:
        """Replay one-sided insertions: each pair is ``(slot, solution slot)``."""
        counts = self._count
        n = 0
        for slot, _solution_slot in pairs:
            counts[slot] += 1
            n += 1
        self.stats.count_updates += n

    def note_solution_neighbors_removed(
        self, pairs: Iterable[Tuple[int, int]]
    ) -> None:
        """Replay one-sided deletions: each pair is ``(slot, solution slot)``."""
        counts = self._count
        n = 0
        for slot, _solution_slot in pairs:
            counts[slot] -= 1
            n += 1
        self.stats.count_updates += n

    # ------------------------------------------------------------------ #
    # Invariant checking
    # ------------------------------------------------------------------ #
    def check_invariants(self) -> None:
        graph = self.graph
        adj = self._adj
        in_sol = self._in_sol
        label = graph.labels_view()
        for s in self._sol_slots:
            if not graph.is_live_slot(s):
                raise SolutionInvariantError(f"solution slot {s} missing from graph")
            if not in_sol[s]:
                raise SolutionInvariantError(
                    f"{label[s]!r} is in the solution set but its membership "
                    "byte is clear"
                )
            for t in adj[s]:
                if in_sol[t]:
                    raise SolutionInvariantError(
                        f"solution vertices {label[s]!r} and {label[t]!r} are adjacent"
                    )
        counts = self._count
        for s in graph.slots():
            if in_sol[s]:
                if s not in self._sol_slots:
                    raise SolutionInvariantError(
                        f"membership byte of {label[s]!r} out of sync"
                    )
                continue
            expected = sum(1 for t in adj[s] if in_sol[t])
            if counts[s] != expected:
                raise SolutionInvariantError(
                    f"count({label[s]!r}) is {counts[s]!r} but the graph "
                    f"says {expected}"
                )

    def is_maximal(self) -> bool:
        in_sol = self._in_sol
        counts = self._count
        for s in self.graph.slots():
            if counts[s] == 0 and not in_sol[s]:
                return False
        return True
