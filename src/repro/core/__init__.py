"""The paper's primary contribution: dynamic k-maximal independent set maintenance."""

from repro.core.base import AlgorithmStatistics, DynamicMISBase
from repro.core.bounds import (
    RatioReport,
    lemma2_expected_tight2_bound,
    measured_tight2_sizes,
    ratio_report,
    riemann_zeta,
    theorem2_ratio_bound,
    theorem2_size_lower_bound,
    theorem3_worst_case_ratio,
    theorem4_constant,
    theorem4_constant_for_graph,
)
from repro.core.framework import KSwapFramework
from repro.core.lazy import LazyMISState
from repro.core.one_swap import DyOneSwap
from repro.core.partition import SlotPartition
from repro.core.perturbation import pick_perturbation_partner
from repro.core.sharded import ShardedEngine, ShardStats
from repro.core.state import MISState
from repro.core.two_swap import DyTwoSwap
from repro.core.verification import (
    find_j_swap,
    find_one_swap,
    greedy_independent_set,
    independence_violations,
    is_independent_set,
    is_k_maximal_independent_set,
    is_maximal_independent_set,
)

__all__ = [
    "DynamicMISBase",
    "AlgorithmStatistics",
    "DyOneSwap",
    "DyTwoSwap",
    "KSwapFramework",
    "MISState",
    "LazyMISState",
    "ShardedEngine",
    "ShardStats",
    "SlotPartition",
    "pick_perturbation_partner",
    "is_independent_set",
    "is_maximal_independent_set",
    "is_k_maximal_independent_set",
    "find_j_swap",
    "find_one_swap",
    "independence_violations",
    "greedy_independent_set",
    "theorem2_ratio_bound",
    "theorem2_size_lower_bound",
    "theorem3_worst_case_ratio",
    "theorem4_constant",
    "theorem4_constant_for_graph",
    "lemma2_expected_tight2_bound",
    "measured_tight2_sizes",
    "riemann_zeta",
    "RatioReport",
    "ratio_report",
]
