"""Exact data-reduction rules for the maximum independent set problem.

These are the classic rules used both by the exact branch-and-reduce solver
(our VCSolver stand-in) and by the DGOneDIS/DGTwoDIS baselines, whose
dependency-graph index is built from the degree-one and degree-two rules:

* **degree-0**: an isolated vertex is always in some MaxIS,
* **degree-1** (pendant): a degree-one vertex can be taken greedily; its
  neighbour is excluded,
* **degree-2 folding**: a degree-two vertex ``v`` with non-adjacent neighbours
  ``a``, ``b`` can be *folded*: either ``v`` is in the MaxIS, or both ``a``
  and ``b`` are; the three vertices are contracted into one and the optimum
  size shifts by one,
* **degree-2 triangle**: if the two neighbours are adjacent, ``v`` is always
  in some MaxIS,
* **domination**: if ``N[u] ⊆ N[v]`` then some MaxIS avoids ``v``.

The reducer works on a *copy* of the input graph and records a trace that
:func:`ReductionResult.reconstruct` replays backwards to lift a solution of
the reduced graph to one of the original graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.graphs.dynamic_graph import DynamicGraph, Vertex


@dataclass
class ReductionTraceEntry:
    """One applied reduction, with enough context to undo it on a solution."""

    rule: str
    vertex: Vertex
    #: Vertices forced into the solution by the rule (degree-0/1/triangle).
    taken: Tuple[Vertex, ...] = ()
    #: Vertices forced out of the solution by the rule.
    removed: Tuple[Vertex, ...] = ()
    #: For folding: the two neighbours merged into ``vertex``.
    fold_neighbors: Tuple[Vertex, ...] = ()


@dataclass
class ReductionResult:
    """Outcome of exhaustively applying reduction rules to a graph."""

    reduced_graph: DynamicGraph
    trace: List[ReductionTraceEntry] = field(default_factory=list)
    #: Size credit already earned by the reductions (vertices fixed into the solution).
    solution_offset: int = 0

    def reconstruct(self, reduced_solution: Set[Vertex]) -> Set[Vertex]:
        """Lift an independent set of the reduced graph to the original graph.

        The trace is replayed in reverse.  For folded vertices, membership of
        the *fold representative* decides whether the folded vertex or its two
        neighbours enter the lifted solution.
        """
        solution = set(reduced_solution)
        for entry in reversed(self.trace):
            if entry.rule == "fold":
                v = entry.vertex
                a, b = entry.fold_neighbors
                if v in solution:
                    # Representative selected means both original neighbours go in.
                    solution.discard(v)
                    solution.add(a)
                    solution.add(b)
                else:
                    solution.add(v)
            else:
                solution.update(entry.taken)
                for w in entry.removed:
                    solution.discard(w)
        return solution


def apply_reductions(
    graph: DynamicGraph,
    *,
    use_degree_two: bool = True,
    use_domination: bool = True,
    max_rounds: Optional[int] = None,
) -> ReductionResult:
    """Exhaustively apply the reduction rules to a copy of ``graph``.

    Parameters
    ----------
    use_degree_two:
        Enable degree-2 folding / triangle elimination.
    use_domination:
        Enable the domination rule (quadratic in the worst case; cheap on the
        sparse graphs used here).
    max_rounds:
        Optional cap on the number of full passes, for use in tests.
    """
    work = graph.copy()
    result = ReductionResult(reduced_graph=work)
    rounds = 0
    changed = True
    while changed:
        changed = False
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            break
        changed |= _apply_low_degree_rules(work, result, use_degree_two=use_degree_two)
        if use_domination and not changed:
            changed |= _apply_domination_rule(work, result)
    return result


def _apply_low_degree_rules(
    work: DynamicGraph, result: ReductionResult, *, use_degree_two: bool
) -> bool:
    changed = False
    adj = work.adjacency_slots_view()
    label = work.labels_view()
    # Iterate over a slot snapshot: rules mutate the graph (removals only,
    # so slots are never recycled mid-pass and liveness checks suffice).
    queue = sorted(work.slots(), key=work.slot_order_key)
    for s in queue:
        if not work.is_live_slot(s):
            continue
        v = label[s]
        degree = len(adj[s])
        if degree == 0:
            work.pop_vertex_slot(s)
            result.trace.append(ReductionTraceEntry(rule="degree0", vertex=v, taken=(v,)))
            result.solution_offset += 1
            changed = True
        elif degree == 1:
            (t,) = tuple(adj[s])
            neighbor = label[t]
            work.pop_vertex_slot(s)
            work.pop_vertex_slot(t)
            result.trace.append(
                ReductionTraceEntry(
                    rule="degree1", vertex=v, taken=(v,), removed=(neighbor,)
                )
            )
            result.solution_offset += 1
            changed = True
        elif degree == 2 and use_degree_two:
            sa, sb = tuple(adj[s])
            a, b = label[sa], label[sb]
            if sb in adj[sa]:
                # Triangle: v is in some MaxIS; a and b are excluded.
                work.pop_vertex_slot(s)
                work.pop_vertex_slot(sa)
                work.pop_vertex_slot(sb)
                result.trace.append(
                    ReductionTraceEntry(
                        rule="degree2_triangle", vertex=v, taken=(v,), removed=(a, b)
                    )
                )
                result.solution_offset += 1
            else:
                _fold_degree_two(work, v, a, b, result)
            changed = True
    return changed


def _fold_degree_two(
    work: DynamicGraph, v: Vertex, a: Vertex, b: Vertex, result: ReductionResult
) -> None:
    """Fold ``{v, a, b}`` into the representative ``v``.

    After folding, ``v`` (the representative) is adjacent to
    ``(N(a) ∪ N(b)) \\ {v}``.  Selecting the representative in the reduced
    graph corresponds to selecting both ``a`` and ``b`` originally; not
    selecting it corresponds to selecting ``v``.  Either way one vertex is
    gained, accounted for in ``solution_offset``.
    """
    merged_neighbors = (work.neighbors_copy(a) | work.neighbors_copy(b)) - {v, a, b}
    work.remove_vertex(a)
    work.remove_vertex(b)
    for u in list(work.neighbors_copy(v)):
        work.remove_edge(v, u)
    for u in merged_neighbors:
        if work.has_vertex(u):
            work.add_edge(v, u)
    result.trace.append(
        ReductionTraceEntry(rule="fold", vertex=v, fold_neighbors=(a, b))
    )
    result.solution_offset += 1


def _apply_domination_rule(work: DynamicGraph, result: ReductionResult) -> bool:
    """Remove one dominated vertex, if any (``N[u] ⊆ N[v]`` allows dropping ``v``)."""
    adj = work.adjacency_slots_view()
    label = work.labels_view()
    for su in sorted(work.slots(), key=work.slot_order_key):
        closed_u = set(adj[su])
        closed_u.add(su)
        for sv in list(adj[su]):
            closed_v = set(adj[sv])
            closed_v.add(sv)
            if closed_u <= closed_v:
                v = label[sv]
                work.pop_vertex_slot(sv)
                result.trace.append(
                    ReductionTraceEntry(rule="domination", vertex=v, removed=(v,))
                )
                return True
    return False


def degree_one_dependencies(graph: DynamicGraph) -> Dict[Vertex, Set[Vertex]]:
    """Return the dependency map produced by degree-one reductions alone.

    For every vertex ``x`` eliminated because its pendant neighbour ``p`` was
    taken, the map records ``x -> {p}``: ``x`` can re-enter a solution when
    ``p`` leaves it.  This is the information the DGOneDIS index is built
    from.
    """
    work = graph.copy()
    adj = work.adjacency_slots_view()
    label = work.labels_view()
    dependencies: Dict[Vertex, Set[Vertex]] = {}
    changed = True
    while changed:
        changed = False
        for s in sorted(work.slots(), key=work.slot_order_key):
            if not work.is_live_slot(s) or len(adj[s]) != 1:
                continue
            (t,) = tuple(adj[s])
            dependencies.setdefault(label[t], set()).add(label[s])
            work.pop_vertex_slot(s)
            work.pop_vertex_slot(t)
            changed = True
    return dependencies
