"""DGOneDIS / DGTwoDIS — the index-based competitors (Zheng et al., ICDE 2019).

The strongest prior work on dynamic near-maximum independent sets maintains a
*dependency-graph index* built from degree-one and degree-two reductions:
every vertex that a reduction excluded from the solution records which
solution vertices it depends on.  When an update forces vertices out of the
current solution, the algorithm searches the index for a set of
*complementary* vertices of at least the same size to re-insert, so the
solution quality does not degrade immediately.  DGOneDIS builds the index
from degree-one reductions only; DGTwoDIS also uses degree-two reductions.

The original implementation is C++ and not redistributable; this module
reimplements the published behaviour:

* an index mapping each excluded vertex to the solution vertices it depends
  on, plus the reverse map (solution vertex → dependants),
* update handling that keeps the solution independent and maximal,
* on removal of solution vertices, a bounded breadth-first *complementary
  search* through the index for replacement vertices,
* no swap-based improvement, hence no approximation guarantee — and, exactly
  as the paper observes, the index drifts away from the true graph structure
  as updates accumulate, which makes the complementary search both slower
  (its budget grows with the number of processed updates, modelling the
  growing search space) and less effective.  The index is only rebuilt when
  :meth:`rebuild_index` is called explicitly; the paper notes that frequent
  rebuilds are too expensive to be practical.

Like the core algorithms, the solution set and the index are kept in **slot
space** (the graph's dense integer vertex ids): update operands are
translated once at the handler boundary and every scan below runs on the
slot-indexed adjacency views.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Set

from repro.baselines.greedy import extend_to_maximal_slots, min_degree_greedy_slots
from repro.exceptions import SolutionInvariantError, UpdateError, VertexNotFoundError
from repro.graphs.dynamic_graph import DynamicGraph, Vertex
from repro.updates.operations import UpdateKind, UpdateOperation


@dataclass
class DgdisStatistics:
    """Counters describing the work performed by a DGDIS instance."""

    updates_processed: int = 0
    complementary_searches: int = 0
    complementary_successes: int = 0
    index_entries_scanned: int = 0
    rebuilds: int = 0


class DGOneDIS:
    """Dependency-graph-index maintenance using degree-one dependencies.

    Parameters
    ----------
    graph:
        The dynamic graph; the instance takes ownership of structural updates.
    initial_solution:
        Optional initial independent set (extended to maximal).  When omitted
        a minimum-degree greedy solution is used.
    search_budget_factor:
        Base number of index entries the complementary search may examine per
        displaced vertex; the effective budget grows with the number of
        processed updates, modelling the index drift of the original method.
    check_invariants:
        Verify independence and maximality after every update (tests only).
    """

    #: Which dependency depth the index captures (overridden by DGTwoDIS).
    index_depth = 1

    def __init__(
        self,
        graph: DynamicGraph,
        *,
        initial_solution: Optional[Iterable[Vertex]] = None,
        search_budget_factor: int = 32,
        check_invariants: bool = False,
    ) -> None:
        self.graph = graph
        self.search_budget_factor = search_budget_factor
        self.check_invariants = check_invariants
        self.stats = DgdisStatistics()
        # Slot-space state: membership set plus the two index directions.
        self._solution: Set[int] = set()
        self._dependencies: Dict[int, Set[int]] = {}
        self._dependants: Dict[int, Set[int]] = {}
        # Cached live views (in-place-growing containers; see DynamicMISBase).
        self._adj = graph.adjacency_slots_view()
        self._slot_map = graph.slot_map_view()
        self._install(initial_solution)
        self.rebuild_index()

    # ------------------------------------------------------------------ #
    # Public API (mirrors the DynamicMISBase surface used by the harness)
    # ------------------------------------------------------------------ #
    @property
    def solution_size(self) -> int:
        """Size of the maintained independent set."""
        return len(self._solution)

    def solution(self) -> Set[Vertex]:
        """Return a copy of the maintained independent set (as labels)."""
        label = self.graph.labels_view()
        return {label[s] for s in self._solution}

    def memory_footprint(self) -> int:
        """Approximate number of stored references (solution + index, both directions)."""
        size = len(self._solution) + len(self._dependencies) + len(self._dependants)
        size += sum(len(deps) for deps in self._dependencies.values())
        size += sum(len(deps) for deps in self._dependants.values())
        return size

    def apply_update(self, operation: UpdateOperation) -> None:
        """Apply one structural update, repairing the solution via the index."""
        kind = operation.kind
        if kind is UpdateKind.INSERT_VERTEX:
            self._handle_insert_vertex(operation.vertex, operation.neighbors)
        elif kind is UpdateKind.DELETE_VERTEX:
            self._handle_delete_vertex(operation.vertex)
        elif kind is UpdateKind.INSERT_EDGE:
            self._handle_insert_edge(*operation.edge)
        elif kind is UpdateKind.DELETE_EDGE:
            self._handle_delete_edge(*operation.edge)
        else:  # pragma: no cover - exhaustive enum
            raise UpdateError(f"unknown update kind {kind!r}")
        self.stats.updates_processed += 1
        if self.check_invariants:
            self._verify()

    def apply_stream(self, operations: Iterable[UpdateOperation]) -> None:
        """Apply a whole update stream in order."""
        for operation in operations:
            self.apply_update(operation)

    def rebuild_index(self) -> None:
        """Rebuild the dependency index from the current graph and solution."""
        self.stats.rebuilds += 1
        self._dependencies = {}
        self._dependants = {}
        adj = self._adj
        solution = self._solution
        depth = self.index_depth
        for s in self.graph.slots():
            if s in solution:
                continue
            owners = adj[s] & solution
            if 1 <= len(owners) <= depth:
                self._index_add(s, owners)

    # ------------------------------------------------------------------ #
    # Index maintenance (slot space)
    # ------------------------------------------------------------------ #
    def _index_add(self, slot: int, owners: Set[int]) -> None:
        self._dependencies[slot] = set(owners)
        for owner in owners:
            self._dependants.setdefault(owner, set()).add(slot)

    def _index_remove(self, slot: int) -> None:
        owners = self._dependencies.pop(slot, None)
        if not owners:
            return
        for owner in owners:
            bucket = self._dependants.get(owner)
            if bucket is not None:
                bucket.discard(slot)
                if not bucket:
                    del self._dependants[owner]

    def _index_refresh(self, slot: int) -> None:
        """Re-derive the index entry of a non-solution slot from the live graph."""
        self._index_remove(slot)
        if slot in self._solution or not self.graph.is_live_slot(slot):
            return
        owners = self._adj[slot] & self._solution
        if 1 <= len(owners) <= self.index_depth:
            self._index_add(slot, owners)

    # ------------------------------------------------------------------ #
    # Update handling
    # ------------------------------------------------------------------ #
    def _handle_insert_vertex(self, vertex: Vertex, neighbors: Sequence[Vertex]) -> None:
        graph = self.graph
        slot = graph.add_vertex_slot(vertex)
        for nbr in neighbors:
            graph.add_edge_slots(slot, graph.slot_of(nbr))
        owners = self._adj[slot] & self._solution
        if not owners:
            self._solution.add(slot)
        elif len(owners) <= self.index_depth:
            self._index_add(slot, owners)

    def _handle_delete_vertex(self, vertex: Vertex) -> None:
        slot = self.graph.slot_of(vertex)
        was_in_solution = slot in self._solution
        neighbors = self.graph.pop_vertex_slot(slot)
        self._index_remove(slot)
        if was_in_solution:
            self._solution.discard(slot)
            dependants = self._dependants.pop(slot, set())
            self._repair_after_removal(1, neighbors | dependants)
        # A deleted non-solution vertex leaves the solution maximal.

    def _handle_insert_edge(self, u: Vertex, v: Vertex) -> None:
        slot_map = self._slot_map
        try:
            su, sv = slot_map[u], slot_map[v]
        except KeyError as exc:
            raise VertexNotFoundError(exc.args[0]) from None
        self.graph.add_edge_slots(su, sv)
        solution = self._solution
        u_in, v_in = su in solution, sv in solution
        if u_in and v_in:
            evicted = max((su, sv), key=self.graph.slot_order_key)
            solution.discard(evicted)
            dependants = self._dependants.pop(evicted, set())
            frontier = set(self._adj[evicted]) | dependants
            self._index_refresh(evicted)
            self._repair_after_removal(1, frontier)
        elif u_in or v_in:
            outsider = sv if u_in else su
            self._index_refresh(outsider)

    def _handle_delete_edge(self, u: Vertex, v: Vertex) -> None:
        slot_map = self._slot_map
        try:
            su, sv = slot_map[u], slot_map[v]
        except KeyError as exc:
            raise VertexNotFoundError(exc.args[0]) from None
        self.graph.remove_edge_slots(su, sv)
        solution = self._solution
        adj = self._adj
        for outsider, insider in ((su, sv), (sv, su)):
            if insider in solution and outsider not in solution:
                if not (adj[outsider] & solution):
                    solution.add(outsider)
                    self._index_remove(outsider)
                    self._refresh_neighbors(outsider)
                else:
                    self._index_refresh(outsider)

    def _refresh_neighbors(self, slot: int) -> None:
        """Refresh index entries of the neighbours of a slot that just joined the solution."""
        for t in list(self._adj[slot]):
            if t not in self._solution:
                self._index_refresh(t)

    # ------------------------------------------------------------------ #
    # Complementary search
    # ------------------------------------------------------------------ #
    def _repair_after_removal(self, removed_count: int, frontier: Set[int]) -> None:
        """Restore maximality and look for complementary vertices via the index.

        The first pass inserts every now-free vertex adjacent to the removed
        ones (maximality).  If fewer than ``removed_count`` vertices could be
        inserted, a bounded breadth-first search follows index dependencies
        looking for further insertion opportunities — the defining move of
        DGOneDIS/DGTwoDIS.  The budget grows with the number of processed
        updates, modelling the index drift that makes the original method
        slow on highly dynamic graphs.
        """
        self.stats.complementary_searches += 1
        graph = self.graph
        adj = self._adj
        solution = self._solution
        inserted = 0
        live = graph.is_live_slot
        for slot in sorted(
            (w for w in frontier if live(w) and w not in solution),
            key=graph.slot_order_key,
        ):
            if not (adj[slot] & solution):
                self._insert_free_vertex(slot)
                inserted += 1
        if inserted >= removed_count:
            self.stats.complementary_successes += 1
            return
        budget = self.search_budget_factor * (1 + self.stats.updates_processed // 500)
        visited: Set[int] = set()
        queue = deque(
            w for w in frontier if live(w) and w not in solution
        )
        while queue and budget > 0:
            slot = queue.popleft()
            if slot in visited or not live(slot):
                continue
            visited.add(slot)
            budget -= 1
            self.stats.index_entries_scanned += 1
            if slot in solution:
                continue
            owners = adj[slot] & solution
            if not owners:
                self._insert_free_vertex(slot)
                inserted += 1
                if inserted >= removed_count:
                    break
                continue
            # Follow the index: other vertices depending on the same solution
            # vertices are the candidates the original method explores.
            for owner in self._dependencies.get(slot, set()) & owners:
                for dependant in self._dependants.get(owner, ()):  # pragma: no branch
                    if dependant not in visited:
                        queue.append(dependant)
        if inserted >= removed_count:
            self.stats.complementary_successes += 1

    def _insert_free_vertex(self, slot: int) -> None:
        self._solution.add(slot)
        self._index_remove(slot)
        self._refresh_neighbors(slot)

    # ------------------------------------------------------------------ #
    # Initialisation and verification
    # ------------------------------------------------------------------ #
    def _install(self, initial_solution: Optional[Iterable[Vertex]]) -> None:
        if initial_solution is not None:
            slot_map = self._slot_map
            members: Set[int] = set()
            for v in initial_solution:
                s = slot_map.get(v)
                if s is None:
                    raise SolutionInvariantError("initial solution is not independent")
                members.add(s)
            adj = self._adj
            for s in members:
                if adj[s] & members:
                    raise SolutionInvariantError("initial solution is not independent")
            self._solution = extend_to_maximal_slots(self.graph, members)
        else:
            self._solution = min_degree_greedy_slots(self.graph)

    def _verify(self) -> None:
        adj = self._adj
        solution = self._solution
        for s in solution:
            if adj[s] & solution:
                raise SolutionInvariantError("DGDIS solution is not independent")
        for s in self.graph.slots():
            if s in solution:
                continue
            if not (adj[s] & solution):
                raise SolutionInvariantError("DGDIS solution is not maximal")


class DGTwoDIS(DGOneDIS):
    """Dependency-graph-index maintenance using degree-one *and* degree-two dependencies.

    The deeper index tracks vertices with up to two solution neighbours, which
    gives the complementary search more routes (slightly better quality) at
    the cost of a larger index and a slower search — mirroring the
    DGOneDIS/DGTwoDIS relationship reported in the paper.
    """

    index_depth = 2
