"""DGOneDIS / DGTwoDIS — the index-based competitors (Zheng et al., ICDE 2019).

The strongest prior work on dynamic near-maximum independent sets maintains a
*dependency-graph index* built from degree-one and degree-two reductions:
every vertex that a reduction excluded from the solution records which
solution vertices it depends on.  When an update forces vertices out of the
current solution, the algorithm searches the index for a set of
*complementary* vertices of at least the same size to re-insert, so the
solution quality does not degrade immediately.  DGOneDIS builds the index
from degree-one reductions only; DGTwoDIS also uses degree-two reductions.

The original implementation is C++ and not redistributable; this module
reimplements the published behaviour:

* an index mapping each excluded vertex to the solution vertices it depends
  on, plus the reverse map (solution vertex → dependants),
* update handling that keeps the solution independent and maximal,
* on removal of solution vertices, a bounded breadth-first *complementary
  search* through the index for replacement vertices,
* no swap-based improvement, hence no approximation guarantee — and, exactly
  as the paper observes, the index drifts away from the true graph structure
  as updates accumulate, which makes the complementary search both slower
  (its budget grows with the number of processed updates, modelling the
  growing search space) and less effective.  The index is only rebuilt when
  :meth:`rebuild_index` is called explicitly; the paper notes that frequent
  rebuilds are too expensive to be practical.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.baselines.greedy import extend_to_maximal, min_degree_greedy
from repro.exceptions import SolutionInvariantError, UpdateError
from repro.graphs.dynamic_graph import DynamicGraph, Vertex
from repro.updates.operations import UpdateKind, UpdateOperation


@dataclass
class DgdisStatistics:
    """Counters describing the work performed by a DGDIS instance."""

    updates_processed: int = 0
    complementary_searches: int = 0
    complementary_successes: int = 0
    index_entries_scanned: int = 0
    rebuilds: int = 0


class DGOneDIS:
    """Dependency-graph-index maintenance using degree-one dependencies.

    Parameters
    ----------
    graph:
        The dynamic graph; the instance takes ownership of structural updates.
    initial_solution:
        Optional initial independent set (extended to maximal).  When omitted
        a minimum-degree greedy solution is used.
    search_budget_factor:
        Base number of index entries the complementary search may examine per
        displaced vertex; the effective budget grows with the number of
        processed updates, modelling the index drift of the original method.
    check_invariants:
        Verify independence and maximality after every update (tests only).
    """

    #: Which dependency depth the index captures (overridden by DGTwoDIS).
    index_depth = 1

    def __init__(
        self,
        graph: DynamicGraph,
        *,
        initial_solution: Optional[Iterable[Vertex]] = None,
        search_budget_factor: int = 32,
        check_invariants: bool = False,
    ) -> None:
        self.graph = graph
        self.search_budget_factor = search_budget_factor
        self.check_invariants = check_invariants
        self.stats = DgdisStatistics()
        self._solution: Set[Vertex] = set()
        self._dependencies: Dict[Vertex, Set[Vertex]] = {}
        self._dependants: Dict[Vertex, Set[Vertex]] = {}
        self._install(initial_solution)
        self.rebuild_index()

    # ------------------------------------------------------------------ #
    # Public API (mirrors the DynamicMISBase surface used by the harness)
    # ------------------------------------------------------------------ #
    @property
    def solution_size(self) -> int:
        """Size of the maintained independent set."""
        return len(self._solution)

    def solution(self) -> Set[Vertex]:
        """Return a copy of the maintained independent set."""
        return set(self._solution)

    def memory_footprint(self) -> int:
        """Approximate number of stored references (solution + index, both directions)."""
        size = len(self._solution) + len(self._dependencies) + len(self._dependants)
        size += sum(len(deps) for deps in self._dependencies.values())
        size += sum(len(deps) for deps in self._dependants.values())
        return size

    def apply_update(self, operation: UpdateOperation) -> None:
        """Apply one structural update, repairing the solution via the index."""
        kind = operation.kind
        if kind is UpdateKind.INSERT_VERTEX:
            self._handle_insert_vertex(operation.vertex, operation.neighbors)
        elif kind is UpdateKind.DELETE_VERTEX:
            self._handle_delete_vertex(operation.vertex)
        elif kind is UpdateKind.INSERT_EDGE:
            self._handle_insert_edge(*operation.edge)
        elif kind is UpdateKind.DELETE_EDGE:
            self._handle_delete_edge(*operation.edge)
        else:  # pragma: no cover - exhaustive enum
            raise UpdateError(f"unknown update kind {kind!r}")
        self.stats.updates_processed += 1
        if self.check_invariants:
            self._verify()

    def apply_stream(self, operations: Iterable[UpdateOperation]) -> None:
        """Apply a whole update stream in order."""
        for operation in operations:
            self.apply_update(operation)

    def rebuild_index(self) -> None:
        """Rebuild the dependency index from the current graph and solution."""
        self.stats.rebuilds += 1
        self._dependencies = {}
        self._dependants = {}
        for v in self.graph.vertices():
            if v in self._solution:
                continue
            owners = self.graph.neighbors(v) & self._solution
            if 1 <= len(owners) <= self.index_depth:
                self._index_add(v, owners)

    # ------------------------------------------------------------------ #
    # Index maintenance
    # ------------------------------------------------------------------ #
    def _index_add(self, vertex: Vertex, owners: Set[Vertex]) -> None:
        self._dependencies[vertex] = set(owners)
        for owner in owners:
            self._dependants.setdefault(owner, set()).add(vertex)

    def _index_remove(self, vertex: Vertex) -> None:
        owners = self._dependencies.pop(vertex, None)
        if not owners:
            return
        for owner in owners:
            bucket = self._dependants.get(owner)
            if bucket is not None:
                bucket.discard(vertex)
                if not bucket:
                    del self._dependants[owner]

    def _index_refresh(self, vertex: Vertex) -> None:
        """Re-derive the index entry of a non-solution vertex from the live graph."""
        self._index_remove(vertex)
        if vertex in self._solution or not self.graph.has_vertex(vertex):
            return
        owners = self.graph.neighbors(vertex) & self._solution
        if 1 <= len(owners) <= self.index_depth:
            self._index_add(vertex, owners)

    # ------------------------------------------------------------------ #
    # Update handling
    # ------------------------------------------------------------------ #
    def _handle_insert_vertex(self, vertex: Vertex, neighbors: Sequence[Vertex]) -> None:
        self.graph.add_vertex(vertex)
        for nbr in neighbors:
            self.graph.add_edge(vertex, nbr)
        owners = self.graph.neighbors(vertex) & self._solution
        if not owners:
            self._solution.add(vertex)
        elif len(owners) <= self.index_depth:
            self._index_add(vertex, owners)

    def _handle_delete_vertex(self, vertex: Vertex) -> None:
        was_in_solution = vertex in self._solution
        neighbors = self.graph.neighbors_copy(vertex)
        self.graph.remove_vertex(vertex)
        self._index_remove(vertex)
        if was_in_solution:
            self._solution.discard(vertex)
            dependants = self._dependants.pop(vertex, set())
            self._repair_after_removal(1, neighbors | dependants)
        # A deleted non-solution vertex leaves the solution maximal.

    def _handle_insert_edge(self, u: Vertex, v: Vertex) -> None:
        self.graph.add_edge(u, v)
        u_in, v_in = u in self._solution, v in self._solution
        if u_in and v_in:
            evicted = max((u, v), key=self.graph.degree_order_key)
            self._solution.discard(evicted)
            dependants = self._dependants.pop(evicted, set())
            frontier = self.graph.neighbors_copy(evicted) | dependants
            self._index_refresh(evicted)
            self._repair_after_removal(1, frontier)
        elif u_in or v_in:
            outsider = v if u_in else u
            self._index_refresh(outsider)

    def _handle_delete_edge(self, u: Vertex, v: Vertex) -> None:
        self.graph.remove_edge(u, v)
        for outsider, insider in ((u, v), (v, u)):
            if insider in self._solution and outsider not in self._solution:
                if not (self.graph.neighbors(outsider) & self._solution):
                    self._solution.add(outsider)
                    self._index_remove(outsider)
                    self._refresh_neighbors(outsider)
                else:
                    self._index_refresh(outsider)

    def _refresh_neighbors(self, vertex: Vertex) -> None:
        """Refresh index entries of the neighbours of a vertex that just joined the solution."""
        for nbr in self.graph.neighbors_copy(vertex):
            if nbr not in self._solution:
                self._index_refresh(nbr)

    # ------------------------------------------------------------------ #
    # Complementary search
    # ------------------------------------------------------------------ #
    def _repair_after_removal(self, removed_count: int, frontier: Set[Vertex]) -> None:
        """Restore maximality and look for complementary vertices via the index.

        The first pass inserts every now-free vertex adjacent to the removed
        ones (maximality).  If fewer than ``removed_count`` vertices could be
        inserted, a bounded breadth-first search follows index dependencies
        looking for further insertion opportunities — the defining move of
        DGOneDIS/DGTwoDIS.  The budget grows with the number of processed
        updates, modelling the index drift that makes the original method
        slow on highly dynamic graphs.
        """
        self.stats.complementary_searches += 1
        inserted = 0
        for vertex in sorted(
            (w for w in frontier if self.graph.has_vertex(w) and w not in self._solution),
            key=self.graph.degree_order_key,
        ):
            if not (self.graph.neighbors(vertex) & self._solution):
                self._insert_free_vertex(vertex)
                inserted += 1
        if inserted >= removed_count:
            self.stats.complementary_successes += 1
            return
        budget = self.search_budget_factor * (1 + self.stats.updates_processed // 500)
        visited: Set[Vertex] = set()
        queue = deque(
            w for w in frontier if self.graph.has_vertex(w) and w not in self._solution
        )
        while queue and budget > 0:
            vertex = queue.popleft()
            if vertex in visited or not self.graph.has_vertex(vertex):
                continue
            visited.add(vertex)
            budget -= 1
            self.stats.index_entries_scanned += 1
            if vertex in self._solution:
                continue
            owners = self.graph.neighbors(vertex) & self._solution
            if not owners:
                self._insert_free_vertex(vertex)
                inserted += 1
                if inserted >= removed_count:
                    break
                continue
            # Follow the index: other vertices depending on the same solution
            # vertices are the candidates the original method explores.
            for owner in self._dependencies.get(vertex, set()) & owners:
                for dependant in self._dependants.get(owner, ()):  # pragma: no branch
                    if dependant not in visited:
                        queue.append(dependant)
        if inserted >= removed_count:
            self.stats.complementary_successes += 1

    def _insert_free_vertex(self, vertex: Vertex) -> None:
        self._solution.add(vertex)
        self._index_remove(vertex)
        self._refresh_neighbors(vertex)

    # ------------------------------------------------------------------ #
    # Initialisation and verification
    # ------------------------------------------------------------------ #
    def _install(self, initial_solution: Optional[Iterable[Vertex]]) -> None:
        if initial_solution is not None:
            members = set(initial_solution)
            if not self.graph.is_independent_set(members):
                raise SolutionInvariantError("initial solution is not independent")
            self._solution = extend_to_maximal(self.graph, members)
        else:
            self._solution = min_degree_greedy(self.graph)

    def _verify(self) -> None:
        if not self.graph.is_independent_set(self._solution):
            raise SolutionInvariantError("DGDIS solution is not independent")
        for v in self.graph.vertices():
            if v in self._solution:
                continue
            if not (self.graph.neighbors(v) & self._solution):
                raise SolutionInvariantError("DGDIS solution is not maximal")


class DGTwoDIS(DGOneDIS):
    """Dependency-graph-index maintenance using degree-one *and* degree-two dependencies.

    The deeper index tracks vertices with up to two solution neighbours, which
    gives the complementary search more routes (slightly better quality) at
    the cost of a larger index and a slower search — mirroring the
    DGOneDIS/DGTwoDIS relationship reported in the paper.
    """

    index_depth = 2
