"""Exact maximum independent set solver (branch-and-reduce).

The paper uses VCSolver (Akiba & Iwata's branch-and-reduce vertex-cover /
independent-set code) to obtain the independence number α(G) of the "easy"
instances, against which the gap and accuracy columns of Tables II and III
are computed.  VCSolver is a large C++ code base; this module provides a
Python branch-and-reduce solver from the same algorithmic family:

* exhaustive low-degree kernelisation — isolated vertices, pendant vertices,
  degree-two paths (triangle elimination and two-neighbour branching) are
  handled without binary branching,
* connected-component decomposition,
* branching on a maximum-degree vertex of the kernel,
* pruning with a greedy clique-cover upper bound against the best solution
  found so far,
* all of it on a single mutable adjacency structure with an undo stack, so no
  graph copies are made inside the search.

It is exact, and fast enough for the scaled-down instances used by this
reproduction.  A configurable node budget turns it into an anytime solver
that raises :class:`~repro.exceptions.SolverTimeoutError` when exceeded (the
analogue of the paper's five-hour limit that defines the easy/hard split);
the best solution found so far is attached to the exception.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.baselines.greedy import min_degree_greedy
from repro.exceptions import SolverTimeoutError
from repro.graphs.dynamic_graph import DynamicGraph, Vertex


@dataclass
class SolverReport:
    """Result of an exact solve: the optimum set plus search statistics."""

    solution: Set[Vertex]
    branch_nodes: int
    reduced_vertices: int

    @property
    def independence_number(self) -> int:
        """Size of the returned maximum independent set."""
        return len(self.solution)


class _Budget:
    """Shared branching-node counter with an optional hard limit."""

    __slots__ = ("nodes", "limit")

    def __init__(self, limit: Optional[int]) -> None:
        self.nodes = 0
        self.limit = limit

    def charge(self) -> None:
        self.nodes += 1
        if self.limit is not None and self.nodes > self.limit:
            raise _BudgetExceeded()


class _BudgetExceeded(Exception):
    """Internal control-flow exception raised when the node budget runs out."""


class _Workspace:
    """Mutable adjacency structure with an undo stack for the search."""

    __slots__ = ("adjacency", "order", "_undo")

    def __init__(self, graph: DynamicGraph, vertices: Set[Vertex]) -> None:
        self.adjacency: Dict[Vertex, Set[Vertex]] = {
            v: graph.neighbors(v) & vertices for v in vertices
        }
        # Interned insertion indices: O(1) deterministic tie-breaks for the
        # kernelisation/branching orders (no per-comparison string building).
        self.order: Dict[Vertex, int] = {v: graph.order_of(v) for v in vertices}
        self._undo: List[Tuple[Vertex, Set[Vertex]]] = []

    def __len__(self) -> int:
        return len(self.adjacency)

    def degree(self, vertex: Vertex) -> int:
        return len(self.adjacency[vertex])

    def remove(self, vertex: Vertex) -> None:
        """Remove ``vertex`` and record how to restore it."""
        neighbors = self.adjacency.pop(vertex)
        for u in neighbors:
            self.adjacency[u].discard(vertex)
        self._undo.append((vertex, neighbors))

    def checkpoint(self) -> int:
        return len(self._undo)

    def rollback(self, checkpoint: int) -> None:
        """Restore every vertex removed since ``checkpoint`` (in reverse order)."""
        while len(self._undo) > checkpoint:
            vertex, neighbors = self._undo.pop()
            self.adjacency[vertex] = neighbors
            for u in neighbors:
                if u in self.adjacency:
                    self.adjacency[u].add(vertex)

    def clique_cover_bound(self) -> int:
        """Greedy clique-cover upper bound on α of the current subgraph."""
        adjacency = self.adjacency
        unassigned = set(adjacency)
        order = sorted(unassigned, key=lambda v: -len(adjacency[v]))
        cliques = 0
        for v in order:
            if v not in unassigned:
                continue
            unassigned.discard(v)
            clique = [v]
            for u in sorted(adjacency[v] & unassigned, key=lambda w: -len(adjacency[w])):
                if u in unassigned and all(u in adjacency[w] for w in clique):
                    clique.append(u)
                    unassigned.discard(u)
            cliques += 1
        return cliques


class BranchAndReduceSolver:
    """Exact MaxIS solver in the VCSolver family (reduce, decompose, branch, bound).

    Parameters
    ----------
    node_budget:
        Maximum number of branching nodes across the whole solve before
        giving up with :class:`SolverTimeoutError`.  ``None`` means unlimited.
    """

    def __init__(self, *, node_budget: Optional[int] = 500_000) -> None:
        self.node_budget = node_budget

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def solve(self, graph: DynamicGraph) -> SolverReport:
        """Compute a maximum independent set of ``graph``.

        Raises
        ------
        SolverTimeoutError
            If the node budget is exhausted.  ``best_known`` carries the size
            of the best (greedy fallback) solution assembled so far.
        """
        budget = _Budget(self.node_budget)
        solution: Set[Vertex] = set()
        components = graph.connected_components()
        # The exclude-branch chain can be as deep as the kernel is large, so
        # the default recursion limit is raised for the duration of the solve.
        import sys

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 10 * graph.num_vertices + 10_000))
        try:
            for component in sorted(components, key=len):
                solution |= self._solve_component(graph, component, budget)
        except _BudgetExceeded:
            fallback = min_degree_greedy(graph)
            raise SolverTimeoutError(
                f"branch-and-reduce node budget of {self.node_budget} exceeded",
                best_known=max(len(fallback), len(solution)),
            ) from None
        finally:
            sys.setrecursionlimit(old_limit)
        return SolverReport(
            solution=solution,
            branch_nodes=budget.nodes,
            reduced_vertices=graph.num_vertices - len(solution),
        )

    def independence_number(self, graph: DynamicGraph) -> int:
        """Convenience wrapper returning only α(G)."""
        return len(self.solve(graph).solution)

    # ------------------------------------------------------------------ #
    # Per-component search
    # ------------------------------------------------------------------ #
    def _solve_component(
        self, graph: DynamicGraph, component: Set[Vertex], budget: _Budget
    ) -> Set[Vertex]:
        workspace = _Workspace(graph, component)
        incumbent = self._greedy_on_workspace(workspace)
        best: List[Set[Vertex]] = [incumbent]
        found = self._search(workspace, set(), best, budget)
        return max(found, best[0], key=len)

    def _search(
        self,
        workspace: _Workspace,
        chosen: Set[Vertex],
        best: List[Set[Vertex]],
        budget: _Budget,
    ) -> Set[Vertex]:
        """Return the best extension of ``chosen`` over the current workspace."""
        budget.charge()
        checkpoint = workspace.checkpoint()
        local_chosen: Set[Vertex] = set()
        order = workspace.order
        # --- kernelisation: repeatedly eliminate vertices of degree <= 2 ---
        try:
            while True:
                adjacency = workspace.adjacency
                if not adjacency:
                    break
                vertex = min(adjacency, key=lambda v: (len(adjacency[v]), order[v]))
                degree = len(adjacency[vertex])
                if degree == 0:
                    local_chosen.add(vertex)
                    workspace.remove(vertex)
                elif degree == 1:
                    (neighbor,) = tuple(adjacency[vertex])
                    local_chosen.add(vertex)
                    workspace.remove(neighbor)
                    workspace.remove(vertex)
                elif degree == 2:
                    a, b = tuple(adjacency[vertex])
                    if b in adjacency[a]:
                        # Triangle: taking the degree-two vertex is optimal.
                        local_chosen.add(vertex)
                        workspace.remove(a)
                        workspace.remove(b)
                        workspace.remove(vertex)
                    else:
                        # Two-way branch: either the vertex is in the MaxIS,
                        # or both of its neighbours are.
                        result = self._branch_degree_two(
                            workspace, vertex, a, b, chosen | local_chosen, best, budget
                        )
                        return self._finish(workspace, checkpoint, local_chosen | result)
                else:
                    break
            if not workspace.adjacency:
                return self._finish(workspace, checkpoint, local_chosen)
            # --- bound ---
            current = chosen | local_chosen
            if len(current) + workspace.clique_cover_bound() <= len(best[0]):
                return self._finish(workspace, checkpoint, local_chosen)
            # --- branch on a maximum-degree vertex ---
            adjacency = workspace.adjacency
            pivot = max(adjacency, key=lambda v: (len(adjacency[v]), order[v]))
            result = self._branch_pivot(workspace, pivot, current, best, budget)
            return self._finish(workspace, checkpoint, local_chosen | result)
        except _BudgetExceeded:
            workspace.rollback(checkpoint)
            raise

    def _branch_degree_two(
        self,
        workspace: _Workspace,
        vertex: Vertex,
        a: Vertex,
        b: Vertex,
        current: Set[Vertex],
        best: List[Set[Vertex]],
        budget: _Budget,
    ) -> Set[Vertex]:
        adjacency = workspace.adjacency
        # Branch 1: take the degree-two vertex.
        checkpoint = workspace.checkpoint()
        workspace.remove(a)
        workspace.remove(b)
        workspace.remove(vertex)
        take_vertex = {vertex} | self._search(workspace, current | {vertex}, best, budget)
        self._update_best(best, current | take_vertex)
        workspace.rollback(checkpoint)
        # Branch 2: take both neighbours (they are non-adjacent).
        checkpoint = workspace.checkpoint()
        to_remove = (adjacency[a] | adjacency[b] | {a, b}) - {vertex}
        for w in to_remove:
            if w in workspace.adjacency:
                workspace.remove(w)
        if vertex in workspace.adjacency:
            workspace.remove(vertex)
        take_neighbors = {a, b} | self._search(workspace, current | {a, b}, best, budget)
        self._update_best(best, current | take_neighbors)
        workspace.rollback(checkpoint)
        return max(take_vertex, take_neighbors, key=len)

    def _branch_pivot(
        self,
        workspace: _Workspace,
        pivot: Vertex,
        current: Set[Vertex],
        best: List[Set[Vertex]],
        budget: _Budget,
    ) -> Set[Vertex]:
        adjacency = workspace.adjacency
        # Branch 1: include the pivot — its closed neighbourhood disappears.
        checkpoint = workspace.checkpoint()
        for w in list(adjacency[pivot]):
            workspace.remove(w)
        workspace.remove(pivot)
        include = {pivot} | self._search(workspace, current | {pivot}, best, budget)
        self._update_best(best, current | include)
        workspace.rollback(checkpoint)
        # Branch 2: exclude the pivot.
        checkpoint = workspace.checkpoint()
        workspace.remove(pivot)
        exclude = self._search(workspace, current, best, budget)
        self._update_best(best, current | exclude)
        workspace.rollback(checkpoint)
        return max(include, exclude, key=len)

    @staticmethod
    def _finish(
        workspace: _Workspace, checkpoint: int, result: Set[Vertex]
    ) -> Set[Vertex]:
        workspace.rollback(checkpoint)
        return result

    @staticmethod
    def _update_best(best: List[Set[Vertex]], candidate: Set[Vertex]) -> None:
        if len(candidate) > len(best[0]):
            best[0] = set(candidate)

    @staticmethod
    def _greedy_on_workspace(workspace: _Workspace) -> Set[Vertex]:
        """Minimum-degree greedy incumbent computed directly on the workspace."""
        adjacency = {v: set(nbrs) for v, nbrs in workspace.adjacency.items()}
        order = workspace.order
        solution: Set[Vertex] = set()
        remaining = set(adjacency)
        while remaining:
            vertex = min(remaining, key=lambda v: (len(adjacency[v] & remaining), order[v]))
            solution.add(vertex)
            remaining.discard(vertex)
            remaining -= adjacency[vertex]
        return solution


def clique_cover_bound(graph: DynamicGraph) -> int:
    """Upper bound on α(G): the size of a greedy clique cover.

    Every independent set picks at most one vertex per clique of a clique
    cover, so the number of cliques bounds α from above.
    """
    workspace = _Workspace(graph, set(graph.vertices()))
    return workspace.clique_cover_bound()


def exact_independence_number(
    graph: DynamicGraph, *, node_budget: Optional[int] = 500_000
) -> int:
    """One-shot helper: α(G) via :class:`BranchAndReduceSolver`."""
    return BranchAndReduceSolver(node_budget=node_budget).independence_number(graph)


def brute_force_maximum_independent_set(graph: DynamicGraph) -> Set[Vertex]:
    """Exponential brute force over all subsets — only for tiny test graphs (n <= 20)."""
    vertices = list(graph.vertices())
    if len(vertices) > 20:
        raise ValueError("brute force is limited to graphs with at most 20 vertices")
    best: Set[Vertex] = set()
    n = len(vertices)
    for mask in range(1 << n):
        subset = {vertices[i] for i in range(n) if mask >> i & 1}
        if len(subset) > len(best) and graph.is_independent_set(subset):
            best = subset
    return best


def independence_numbers(
    graphs: Dict[str, DynamicGraph], *, node_budget: Optional[int] = 500_000
) -> Dict[str, int]:
    """Compute α(G) for a dictionary of graphs (used by the experiment harness)."""
    solver = BranchAndReduceSolver(node_budget=node_budget)
    return {name: solver.independence_number(graph) for name, graph in graphs.items()}
