"""ARW local search (Andrade, Resende & Werneck, J. Heuristics 2012).

ARW is the classic iterated local search for maximum independent set based on
(1,2)-swaps: repeatedly find a solution vertex whose removal allows two of its
neighbours to be inserted, interleaved with random perturbations (force a
random non-solution vertex in, kicking its solution neighbours out).  The
paper uses ARW's result as the reference "Best Result" for the hard instances
of Table IV and derives its DyARW competitor from it.

This implementation follows the published algorithm structure rather than the
authors' highly engineered C++ (no incremental candidate lists / double
pointer scans); at this repository's graph scales the simple form converges
in the same way.  The search itself runs on the graph's slot views (the
graph is static for the duration of a run, so slots are stable); only the
result is translated back to labels.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Set

from repro.baselines.greedy import extend_to_maximal_slots, randomized_greedy
from repro.graphs.dynamic_graph import DynamicGraph, Vertex


@dataclass
class ArwResult:
    """Result of a local-search run."""

    solution: Set[Vertex]
    iterations: int
    improvements: int


class ArwLocalSearch:
    """Iterated (1,2)-swap local search for static maximum independent set.

    Parameters
    ----------
    max_iterations:
        Number of outer iterations (each applies local search to a local
        optimum, then perturbs).
    seed:
        Seed for the perturbation randomness.
    """

    def __init__(self, *, max_iterations: int = 50, seed: Optional[int] = None) -> None:
        self.max_iterations = max_iterations
        self.seed = seed

    def run(
        self, graph: DynamicGraph, initial_solution: Optional[Iterable[Vertex]] = None
    ) -> ArwResult:
        """Run the iterated local search and return the best solution found."""
        rng = random.Random(self.seed)
        slot_map = graph.slot_map_view()
        if initial_solution is None:
            seeds = randomized_greedy(graph, seed=self.seed)
        else:
            seeds = set(initial_solution)
        current = {slot_map[v] for v in seeds}
        current = self._local_search(graph, current)
        best = set(current)
        improvements = 0
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            candidate = self._perturb(graph, set(current), rng)
            candidate = self._local_search(graph, candidate)
            if len(candidate) >= len(current):
                current = candidate
            if len(candidate) > len(best):
                best = set(candidate)
                improvements += 1
        label = graph.labels_view()
        return ArwResult(
            solution={label[s] for s in best},
            iterations=iterations,
            improvements=improvements,
        )

    # ------------------------------------------------------------------ #
    # Local search: repeat (1,2)-swaps until none applies (slot space)
    # ------------------------------------------------------------------ #
    def _local_search(self, graph: DynamicGraph, solution: Set[int]) -> Set[int]:
        solution = extend_to_maximal_slots(graph, solution)
        improved = True
        while improved:
            improved = False
            for s in list(solution):
                swap_in = self._find_two_replacements(graph, solution, s)
                if swap_in is not None:
                    solution.discard(s)
                    solution.update(swap_in)
                    # New slots may have opened next to the inserted vertices.
                    solution = extend_to_maximal_slots(graph, solution)
                    improved = True
        return solution

    @staticmethod
    def _find_two_replacements(
        graph: DynamicGraph, solution: Set[int], slot: int
    ) -> Optional[List[int]]:
        """Find two non-adjacent neighbours of ``slot`` that are tight only on it."""
        adj = graph.adjacency_slots_view()
        tight = [
            t
            for t in adj[slot]
            if t not in solution and len(adj[t] & solution) == 1
        ]
        if len(tight) < 2:
            return None
        for i, a in enumerate(tight):
            a_neighbors = adj[a]
            for b in tight[i + 1 :]:
                if b not in a_neighbors:
                    return [a, b]
        return None

    # ------------------------------------------------------------------ #
    # Perturbation: force a random outsider in
    # ------------------------------------------------------------------ #
    @staticmethod
    def _perturb(
        graph: DynamicGraph, solution: Set[int], rng: random.Random
    ) -> Set[int]:
        outsiders = [s for s in graph.slots() if s not in solution]
        if not outsiders:
            return solution
        forced = rng.choice(outsiders)
        adj = graph.adjacency_slots_view()
        for nbr in adj[forced] & solution:
            solution.discard(nbr)
        solution.add(forced)
        return extend_to_maximal_slots(graph, solution)


def arw_best_result(
    graph: DynamicGraph,
    *,
    max_iterations: int = 50,
    seed: Optional[int] = None,
    initial_solution: Optional[Iterable[Vertex]] = None,
) -> Set[Vertex]:
    """Convenience wrapper returning only the best solution of a local-search run."""
    search = ArwLocalSearch(max_iterations=max_iterations, seed=seed)
    return search.run(graph, initial_solution=initial_solution).solution
