"""Greedy construction heuristics for (static) maximum independent set.

These are the standard baselines the literature builds on: the minimum-degree
greedy (whose quality on power-law graphs motivates the paper's PLB analysis)
and a randomised greedy used to generate diverse starting solutions for the
local-search baselines.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Set

from repro.graphs.dynamic_graph import DynamicGraph, Vertex


def min_degree_greedy(graph: DynamicGraph) -> Set[Vertex]:
    """Greedy maximal independent set, repeatedly taking a minimum-degree vertex.

    Operates on a working copy: after a vertex is taken, its closed
    neighbourhood is deleted and degrees are recomputed, which is the
    classical dynamic variant (stronger than the static-degree greedy).
    """
    work = graph.copy()
    solution: Set[Vertex] = set()
    # A simple bucket-less implementation: repeatedly scan for the minimum
    # degree vertex.  Adequate for the graph sizes used in this repository.
    while len(work) > 0:
        best = min(work.vertices(), key=work.degree_order_key)
        solution.add(best)
        # Snapshot: deleting a neighbour mutates best's adjacency set.
        for nbr in work.neighbors_copy(best):
            work.remove_vertex(nbr)
        work.remove_vertex(best)
    return solution


def static_degree_greedy(graph: DynamicGraph) -> Set[Vertex]:
    """Greedy maximal independent set scanning vertices by their original degree."""
    solution: Set[Vertex] = set()
    blocked: Set[Vertex] = set()
    for v in sorted(graph.vertices(), key=graph.degree_order_key):
        if v in blocked:
            continue
        solution.add(v)
        blocked.add(v)
        blocked.update(graph.neighbors(v))
    return solution


def randomized_greedy(graph: DynamicGraph, *, seed: Optional[int] = None) -> Set[Vertex]:
    """Greedy maximal independent set over a uniformly random vertex order."""
    rng = random.Random(seed)
    order = list(graph.vertices())
    rng.shuffle(order)
    solution: Set[Vertex] = set()
    blocked: Set[Vertex] = set()
    for v in order:
        if v in blocked:
            continue
        solution.add(v)
        blocked.add(v)
        blocked.update(graph.neighbors(v))
    return solution


def extend_to_maximal(graph: DynamicGraph, partial: Iterable[Vertex]) -> Set[Vertex]:
    """Extend an independent set to a maximal one (smallest-degree-first greedy)."""
    solution = set(partial)
    blocked: Set[Vertex] = set(solution)
    for v in solution:
        blocked.update(graph.neighbors(v))
    for v in sorted(graph.vertices(), key=graph.degree_order_key):
        if v in blocked:
            continue
        solution.add(v)
        blocked.add(v)
        blocked.update(graph.neighbors(v))
    return solution
