"""Greedy construction heuristics for (static) maximum independent set.

These are the standard baselines the literature builds on: the minimum-degree
greedy (whose quality on power-law graphs motivates the paper's PLB analysis)
and a randomised greedy used to generate diverse starting solutions for the
local-search baselines.

The public functions speak vertex labels; internally everything runs on the
graph's dense slot views (no label hashing inside the selection loops).  The
``*_slots`` variants are consumed directly by the index-based baselines.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Set

from repro.graphs.dynamic_graph import DynamicGraph, Vertex


def min_degree_greedy_slots(graph: DynamicGraph) -> Set[int]:
    """Minimum-degree greedy maximal independent set, returned as slot ids.

    Operates on a working copy: after a vertex is taken, its closed
    neighbourhood is deleted and degrees are recomputed, which is the
    classical dynamic variant (stronger than the static-degree greedy).
    Slots are stable across :meth:`DynamicGraph.copy`, and the working copy
    only ever deletes vertices (so no slot is recycled during the run): the
    returned slots are valid in ``graph``.
    """
    work = graph.copy()
    adj = work.adjacency_slots_view()
    order = work.orders_view()
    solution: Set[int] = set()
    # A simple bucket-less implementation: repeatedly scan for the minimum
    # degree vertex.  Adequate for the graph sizes used in this repository.
    while len(work) > 0:
        best = min(work.slots(), key=lambda s: (len(adj[s]), order[s]))
        solution.add(best)
        # Snapshot: deleting a neighbour mutates best's adjacency set.
        for t in list(adj[best]):
            work.pop_vertex_slot(t)
        work.pop_vertex_slot(best)
    return solution


def min_degree_greedy(graph: DynamicGraph) -> Set[Vertex]:
    """Greedy maximal independent set, repeatedly taking a minimum-degree vertex."""
    label = graph.labels_view()
    return {label[s] for s in min_degree_greedy_slots(graph)}


def static_degree_greedy_slots(graph: DynamicGraph) -> Set[int]:
    """Greedy maximal independent set scanning slots by their original degree."""
    adj = graph.adjacency_slots_view()
    solution: Set[int] = set()
    blocked: Set[int] = set()
    for s in sorted(graph.slots(), key=graph.slot_order_key):
        if s in blocked:
            continue
        solution.add(s)
        blocked.add(s)
        blocked.update(adj[s])
    return solution


def static_degree_greedy(graph: DynamicGraph) -> Set[Vertex]:
    """Greedy maximal independent set scanning vertices by their original degree."""
    label = graph.labels_view()
    return {label[s] for s in static_degree_greedy_slots(graph)}


def randomized_greedy(graph: DynamicGraph, *, seed: Optional[int] = None) -> Set[Vertex]:
    """Greedy maximal independent set over a uniformly random vertex order."""
    rng = random.Random(seed)
    # Shuffle labels (not slots) so the sampled orders are identical to the
    # pre-slot implementation for a given seed.
    order = list(graph.vertices())
    rng.shuffle(order)
    slot_map = graph.slot_map_view()
    adj = graph.adjacency_slots_view()
    label = graph.labels_view()
    solution: Set[int] = set()
    blocked: Set[int] = set()
    for v in order:
        s = slot_map[v]
        if s in blocked:
            continue
        solution.add(s)
        blocked.add(s)
        blocked.update(adj[s])
    return {label[s] for s in solution}


def extend_to_maximal_slots(graph: DynamicGraph, partial: Iterable[int]) -> Set[int]:
    """Extend an independent slot set to a maximal one (smallest-degree-first greedy)."""
    adj = graph.adjacency_slots_view()
    solution: Set[int] = set(partial)
    blocked: Set[int] = set(solution)
    for s in solution:
        blocked.update(adj[s])
    for s in sorted(graph.slots(), key=graph.slot_order_key):
        if s in blocked:
            continue
        solution.add(s)
        blocked.add(s)
        blocked.update(adj[s])
    return solution


def extend_to_maximal(graph: DynamicGraph, partial: Iterable[Vertex]) -> Set[Vertex]:
    """Extend an independent set to a maximal one (smallest-degree-first greedy)."""
    slot_map = graph.slot_map_view()
    label = graph.labels_view()
    solution = extend_to_maximal_slots(graph, (slot_map[v] for v in partial))
    return {label[s] for s in solution}
