"""DyARW — the dynamic variant of ARW used as a competitor in the paper.

The paper adapts the ARW (1,2)-swap local search to the dynamic setting and
observes that, because the solution it maintains is also 1-maximal, its
quality is essentially identical to DyOneSwap while its running time is a
little higher due to the ordered structures required by ARW's double-pointer
scan implementation.

This implementation reuses the update-handling machinery of
:class:`~repro.core.base.DynamicMISBase` (the four update cases are identical
for any 1-maximal maintenance scheme) but searches for swaps the ARW way: for
each affected solution vertex it sorts the tight neighbourhood and performs a
pairwise scan over the ordered list, instead of testing only the newly added
candidates against the clique structure.  The extra ordering work is what
makes it measurably slower than DyOneSwap, reproducing the gap seen in
Fig 5(a) of the paper.

Like the core algorithms, all processing happens in slot space.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.core.base import DynamicMISBase


class DyARW(DynamicMISBase):
    """Dynamic ARW: 1-maximal maintenance with ordered tight-neighbourhood scans.

    Same guarantee as :class:`~repro.core.one_swap.DyOneSwap` (the maintained
    set is 1-maximal, hence a (Δ/2 + 1)-approximation); the difference is the
    swap-search procedure, which mirrors ARW's sorted two-pointer scan and is
    therefore a constant factor slower.
    """

    def __init__(self, graph, **kwargs) -> None:
        kwargs.pop("k", None)
        kwargs.pop("perturbation", None)
        super().__init__(graph, k=1, **kwargs)

    # ------------------------------------------------------------------ #
    # Swap processing, ARW style
    # ------------------------------------------------------------------ #
    def _process_candidates(self) -> None:
        # Deterministic sweep drain shared with the core maintainers — see
        # base._sweep_level1 (the members are ignored: ARW re-derives the
        # tight neighbourhood from scratch per examination).
        queue = self._candidates[1]
        if not queue:
            return
        in_sol = self._in_sol

        def visit(v: int, _members) -> None:
            if not in_sol[v]:
                return
            swap_in = self._ordered_scan(v)
            if swap_in is not None:
                self._perform_swap(v, swap_in)

        self._sweep_level1(queue, visit)

    def _ordered_scan(self, slot: int) -> Optional[Tuple[int, int]]:
        """Scan the *sorted* tight neighbourhood of ``slot`` for a non-adjacent pair.

        ARW keeps each solution vertex's tight list ordered and sweeps two
        pointers over it; here the ordering is re-established on demand, which
        is the maintenance overhead the paper attributes to DyARW.
        """
        adj = self._adj
        tight: List[int] = sorted(
            self.state.tight1_view(slot),
            key=self.graph.slot_order_key,
        )
        if len(tight) < 2:
            return None
        for i, a in enumerate(tight):
            a_neighbors = adj[a]
            for b in tight[i + 1 :]:
                if b not in a_neighbors:
                    return a, b
        return None

    def _perform_swap(self, slot: int, swap_in: Tuple[int, int]) -> None:
        state = self.state
        # Snapshot: move_out/move_in below dismantle the live bucket.
        tight: Set[int] = set(state.tight1_view(slot))
        state.move_out_slot(slot)
        first, second = swap_in
        counts = self._counts
        in_sol = self._in_sol
        if counts[first] == 0:
            state.move_in_slot(first)
        if not in_sol[second] and counts[second] == 0:
            state.move_in_slot(second)
        self._extend_maximal_over(w for w in tight if w not in swap_in)
        self.stats.record_swap(1)
        self._collect_candidates_around([slot])
