"""Baseline algorithms: exact solver, greedy heuristics, ARW, DyARW, DGOneDIS/DGTwoDIS."""

from repro.baselines.arw import ArwLocalSearch, ArwResult, arw_best_result
from repro.baselines.dgdis import DGOneDIS, DGTwoDIS, DgdisStatistics
from repro.baselines.dyn_arw import DyARW
from repro.baselines.exact import (
    BranchAndReduceSolver,
    SolverReport,
    brute_force_maximum_independent_set,
    clique_cover_bound,
    exact_independence_number,
    independence_numbers,
)
from repro.baselines.greedy import (
    extend_to_maximal,
    min_degree_greedy,
    randomized_greedy,
    static_degree_greedy,
)
from repro.baselines.reductions import (
    ReductionResult,
    ReductionTraceEntry,
    apply_reductions,
    degree_one_dependencies,
)

__all__ = [
    "BranchAndReduceSolver",
    "SolverReport",
    "exact_independence_number",
    "independence_numbers",
    "brute_force_maximum_independent_set",
    "clique_cover_bound",
    "ArwLocalSearch",
    "ArwResult",
    "arw_best_result",
    "DyARW",
    "DGOneDIS",
    "DGTwoDIS",
    "DgdisStatistics",
    "min_degree_greedy",
    "static_degree_greedy",
    "randomized_greedy",
    "extend_to_maximal",
    "apply_reductions",
    "ReductionResult",
    "ReductionTraceEntry",
    "degree_one_dependencies",
]
