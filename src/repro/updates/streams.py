"""Update-stream generators.

The paper's evaluation protocol "randomly inserts/removes a predetermined
number of vertices/edges to simulate the update operations".  The generators
in this module produce *valid* update sequences: each operation is legal on
the graph obtained by applying all previous operations (they simulate the
stream on a scratch copy of the input graph while generating it).

The main entry points are:

* :func:`random_edge_stream` — random edge insertions/deletions,
* :func:`random_vertex_stream` — random vertex insertions/deletions,
* :func:`mixed_update_stream` — the paper's default workload (a mix of all
  four operation kinds),
* :func:`sliding_window_stream` — an insertion-then-expiry pattern typical of
  streaming applications (with an optional *flicker* fraction of edges that
  retract almost immediately),
* :func:`burst_stream` — bursts of insertions around hub vertices, modelling
  the "hot topic" scenario the introduction motivates,
* :func:`bursty_churn_stream` — hub bursts where most of the burst is
  retracted within the same window, the workload the batched update engine's
  stream coalescing is built for (inverse pairs inside one batch cancel),
* :func:`flash_crowd_stream` — bursts of *transient vertices* that arrive,
  interact and leave within one window; the heaviest coalescing win, since a
  cancelled vertex insertion/deletion pair also cancels all its incident
  edges and the maximality repair both would have triggered.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from repro.exceptions import UpdateError
from repro.graphs.dynamic_graph import DynamicGraph
from repro.updates.operations import UpdateKind, UpdateOperation, apply_update


@dataclass
class UpdateStream:
    """A materialised sequence of update operations plus provenance metadata."""

    operations: List[UpdateOperation]
    description: str = ""
    seed: Optional[int] = None
    metadata: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.operations)

    def length_hint(self) -> int:
        """Operation count (the lazy stream protocol; free for a list)."""
        return len(self.operations)

    def __iter__(self) -> Iterator[UpdateOperation]:
        return iter(self.operations)

    def __getitem__(self, index):
        return self.operations[index]

    def prefix(self, length: int) -> "UpdateStream":
        """Return a stream containing only the first ``length`` operations."""
        return UpdateStream(
            operations=self.operations[:length],
            description=f"{self.description}[:{length}]",
            seed=self.seed,
            metadata=dict(self.metadata),
        )

    def counts_by_kind(self) -> dict:
        """Return ``{UpdateKind: count}`` for the operations in the stream."""
        counts: dict = {}
        for op in self.operations:
            counts[op.kind] = counts.get(op.kind, 0) + 1
        return counts

    def apply_all(self, graph: DynamicGraph) -> None:
        """Apply every operation in order to ``graph`` (mutates it in place)."""
        for op in self.operations:
            apply_update(graph, op)


class _StreamBuilder:
    """Shared machinery: simulate operations on a scratch graph while emitting them."""

    def __init__(self, graph: DynamicGraph, seed: Optional[int]) -> None:
        self.scratch = graph.copy()
        self.rng = random.Random(seed)
        self.operations: List[UpdateOperation] = []
        self._vertex_pool: List = list(self.scratch.vertices())
        self._edge_pool: List = list(self.scratch.edges())
        self._next_vertex_id = self._compute_next_id()

    def _compute_next_id(self) -> int:
        numeric = [v for v in self.scratch.vertices() if isinstance(v, int)]
        return (max(numeric) + 1) if numeric else 0

    # -------------------------------------------------------------- #
    def _emit(self, operation: UpdateOperation) -> None:
        apply_update(self.scratch, operation)
        self.operations.append(operation)

    def insert_random_edge(self, *, max_attempts: int = 200) -> bool:
        """Insert an edge between two random, currently non-adjacent vertices."""
        vertices = self._vertex_pool
        if len(vertices) < 2:
            return False
        for _ in range(max_attempts):
            u = self.rng.choice(vertices)
            v = self.rng.choice(vertices)
            if u == v:
                continue
            if not self.scratch.has_vertex(u) or not self.scratch.has_vertex(v):
                continue
            if self.scratch.has_edge(u, v):
                continue
            self._emit(UpdateOperation.insert_edge(u, v))
            self._edge_pool.append((u, v))
            return True
        return False

    def delete_random_edge(self, *, max_attempts: int = 200) -> bool:
        """Delete a uniformly random existing edge."""
        for _ in range(max_attempts):
            if not self._edge_pool:
                return False
            index = self.rng.randrange(len(self._edge_pool))
            u, v = self._edge_pool[index]
            # Swap-remove for O(1) deletion from the pool.
            self._edge_pool[index] = self._edge_pool[-1]
            self._edge_pool.pop()
            if self.scratch.has_edge(u, v):
                self._emit(UpdateOperation.delete_edge(u, v))
                return True
        return False

    def insert_random_vertex(self, *, max_neighbors: int = 5) -> bool:
        """Insert a fresh vertex wired to a few random existing vertices."""
        new_vertex = self._next_vertex_id
        self._next_vertex_id += 1
        existing = [v for v in self._vertex_pool if self.scratch.has_vertex(v)]
        degree = self.rng.randint(0, min(max_neighbors, len(existing)))
        neighbors = self.rng.sample(existing, degree) if degree else []
        self._emit(UpdateOperation.insert_vertex(new_vertex, neighbors))
        self._vertex_pool.append(new_vertex)
        for nbr in neighbors:
            self._edge_pool.append((new_vertex, nbr))
        return True

    def delete_random_vertex(self, *, max_attempts: int = 200) -> bool:
        """Delete a uniformly random existing vertex."""
        for _ in range(max_attempts):
            if not self._vertex_pool:
                return False
            index = self.rng.randrange(len(self._vertex_pool))
            vertex = self._vertex_pool[index]
            self._vertex_pool[index] = self._vertex_pool[-1]
            self._vertex_pool.pop()
            if self.scratch.has_vertex(vertex):
                self._emit(UpdateOperation.delete_vertex(vertex))
                return True
        return False


def random_edge_stream(
    graph: DynamicGraph,
    num_updates: int,
    *,
    insert_ratio: float = 0.5,
    seed: Optional[int] = None,
) -> UpdateStream:
    """Generate ``num_updates`` random edge insertions/deletions.

    ``insert_ratio`` is the probability that any given operation is an
    insertion; the remainder are deletions of random existing edges.
    """
    if not 0.0 <= insert_ratio <= 1.0:
        raise UpdateError("insert_ratio must lie in [0, 1]")
    builder = _StreamBuilder(graph, seed)
    produced = 0
    guard = 0
    while produced < num_updates and guard < 20 * num_updates + 100:
        guard += 1
        if builder.rng.random() < insert_ratio:
            ok = builder.insert_random_edge()
        else:
            ok = builder.delete_random_edge() or builder.insert_random_edge()
        if ok:
            produced += 1
    return UpdateStream(
        operations=builder.operations,
        description=f"random_edge_stream(n={num_updates}, insert_ratio={insert_ratio})",
        seed=seed,
        metadata={"insert_ratio": insert_ratio},
    )


def random_vertex_stream(
    graph: DynamicGraph,
    num_updates: int,
    *,
    insert_ratio: float = 0.5,
    max_neighbors: int = 5,
    seed: Optional[int] = None,
) -> UpdateStream:
    """Generate ``num_updates`` random vertex insertions/deletions."""
    if not 0.0 <= insert_ratio <= 1.0:
        raise UpdateError("insert_ratio must lie in [0, 1]")
    builder = _StreamBuilder(graph, seed)
    produced = 0
    guard = 0
    while produced < num_updates and guard < 20 * num_updates + 100:
        guard += 1
        if builder.rng.random() < insert_ratio:
            ok = builder.insert_random_vertex(max_neighbors=max_neighbors)
        else:
            ok = builder.delete_random_vertex() or builder.insert_random_vertex(
                max_neighbors=max_neighbors
            )
        if ok:
            produced += 1
    return UpdateStream(
        operations=builder.operations,
        description=f"random_vertex_stream(n={num_updates}, insert_ratio={insert_ratio})",
        seed=seed,
        metadata={"insert_ratio": insert_ratio, "max_neighbors": max_neighbors},
    )


def mixed_update_stream(
    graph: DynamicGraph,
    num_updates: int,
    *,
    edge_fraction: float = 0.8,
    insert_ratio: float = 0.5,
    max_neighbors: int = 5,
    seed: Optional[int] = None,
) -> UpdateStream:
    """Generate the paper's default workload: a random mix of all four update kinds.

    ``edge_fraction`` of the operations are edge updates; the rest are vertex
    updates.  Within each class, ``insert_ratio`` of the operations are
    insertions.
    """
    if not 0.0 <= edge_fraction <= 1.0:
        raise UpdateError("edge_fraction must lie in [0, 1]")
    builder = _StreamBuilder(graph, seed)
    produced = 0
    guard = 0
    while produced < num_updates and guard < 20 * num_updates + 100:
        guard += 1
        use_edge = builder.rng.random() < edge_fraction
        use_insert = builder.rng.random() < insert_ratio
        if use_edge and use_insert:
            ok = builder.insert_random_edge()
        elif use_edge:
            ok = builder.delete_random_edge() or builder.insert_random_edge()
        elif use_insert:
            ok = builder.insert_random_vertex(max_neighbors=max_neighbors)
        else:
            ok = builder.delete_random_vertex() or builder.insert_random_vertex(
                max_neighbors=max_neighbors
            )
        if ok:
            produced += 1
    return UpdateStream(
        operations=builder.operations,
        description=(
            f"mixed_update_stream(n={num_updates}, edge_fraction={edge_fraction}, "
            f"insert_ratio={insert_ratio})"
        ),
        seed=seed,
        metadata={"edge_fraction": edge_fraction, "insert_ratio": insert_ratio},
    )


def sliding_window_stream(
    graph: DynamicGraph,
    num_updates: int,
    *,
    window: int = 100,
    flicker: float = 0.0,
    seed: Optional[int] = None,
) -> UpdateStream:
    """Generate an insertion stream where edges expire after ``window`` further updates.

    Models streaming workloads (interaction graphs, temporal networks) where
    only the most recent interactions are kept.  With ``flicker > 0``, that
    fraction of inserted edges is retracted on the very next operation
    instead of waiting for expiry — the short-lived interactions real
    streams are full of.  Flickered pairs are adjacent inverse operations,
    so batch coalescing (:mod:`repro.updates.coalesce`) cancels them
    whenever both ends fall inside one batch.
    """
    if not 0.0 <= flicker <= 1.0:
        raise UpdateError("flicker must lie in [0, 1]")
    builder = _StreamBuilder(graph, seed)
    live: List = []
    produced = 0
    guard = 0
    while produced < num_updates and guard < 20 * num_updates + 100:
        guard += 1
        if len(live) >= window:
            u, v = live.pop(0)
            if builder.scratch.has_edge(u, v):
                builder._emit(UpdateOperation.delete_edge(u, v))
                produced += 1
                continue
        before = len(builder.operations)
        if builder.insert_random_edge():
            op = builder.operations[before]
            produced += 1
            if produced < num_updates and builder.rng.random() < flicker:
                builder._emit(UpdateOperation.delete_edge(*op.edge))
                produced += 1
            else:
                live.append(op.edge)
    return UpdateStream(
        operations=builder.operations,
        description=(
            f"sliding_window_stream(n={num_updates}, window={window}, "
            f"flicker={flicker})"
        ),
        seed=seed,
        metadata={"window": window, "flicker": flicker},
    )


def burst_stream(
    graph: DynamicGraph,
    num_updates: int,
    *,
    burst_size: int = 20,
    seed: Optional[int] = None,
) -> UpdateStream:
    """Generate bursts of edge insertions centred on random hub vertices.

    This is the "hot topic" scenario from the paper's introduction: a vertex
    suddenly acquires many new neighbours (a topic going viral), followed by a
    quieter period where random edges are removed again.
    """
    builder = _StreamBuilder(graph, seed)
    vertices = [v for v in builder.scratch.vertices()]
    produced = 0
    guard = 0
    while produced < num_updates and vertices and guard < 20 * num_updates + 100:
        guard += 1
        hub = builder.rng.choice(vertices)
        if not builder.scratch.has_vertex(hub):
            continue
        burst = min(burst_size, num_updates - produced)
        for _ in range(burst):
            target = builder.rng.choice(vertices)
            if (
                target != hub
                and builder.scratch.has_vertex(target)
                and builder.scratch.has_vertex(hub)
                and not builder.scratch.has_edge(hub, target)
            ):
                builder._emit(UpdateOperation.insert_edge(hub, target))
                produced += 1
        # Cool-down: remove a few random edges.
        for _ in range(max(1, burst // 4)):
            if produced >= num_updates:
                break
            if builder.delete_random_edge():
                produced += 1
    return UpdateStream(
        operations=builder.operations,
        description=f"burst_stream(n={num_updates}, burst_size={burst_size})",
        seed=seed,
        metadata={"burst_size": burst_size},
    )


def bursty_churn_stream(
    graph: DynamicGraph,
    num_updates: int,
    *,
    burst_size: int = 32,
    churn: float = 0.75,
    seed: Optional[int] = None,
) -> UpdateStream:
    """Generate hub bursts where most of each burst is retracted immediately.

    The "hot topic" pattern of the paper's introduction taken to its bursty
    extreme: a hub acquires ``burst_size`` new neighbours at once, and a
    ``churn`` fraction of exactly those edges is deleted again within the
    same burst window (the topic cools as fast as it flared).  Every
    retracted edge forms an insert/delete inverse pair a few positions
    apart, so a batched consumer cancels them outright: with
    ``batch_size >= burst_size * (1 + churn)`` the net effect of a burst is
    only its surviving ``1 - churn`` fraction.
    """
    if not 0.0 <= churn <= 1.0:
        raise UpdateError("churn must lie in [0, 1]")
    if burst_size < 1:
        raise UpdateError("burst_size must be at least 1")
    builder = _StreamBuilder(graph, seed)
    vertices = list(builder.scratch.vertices())
    produced = 0
    guard = 0
    while produced < num_updates and vertices and guard < 20 * num_updates + 100:
        guard += 1
        hub = builder.rng.choice(vertices)
        if not builder.scratch.has_vertex(hub):
            continue
        inserted: List = []
        for _ in range(min(burst_size, num_updates - produced)):
            target = builder.rng.choice(vertices)
            if (
                target != hub
                and builder.scratch.has_vertex(target)
                and not builder.scratch.has_edge(hub, target)
            ):
                builder._emit(UpdateOperation.insert_edge(hub, target))
                inserted.append(target)
                produced += 1
        # Retraction wave: the most recent interactions vanish first.
        retract = int(len(inserted) * churn)
        for target in reversed(inserted[len(inserted) - retract :]):
            if produced >= num_updates:
                break
            if builder.scratch.has_edge(hub, target):
                builder._emit(UpdateOperation.delete_edge(hub, target))
                produced += 1
    return UpdateStream(
        operations=builder.operations,
        description=(
            f"bursty_churn_stream(n={num_updates}, burst_size={burst_size}, "
            f"churn={churn})"
        ),
        seed=seed,
        metadata={"burst_size": burst_size, "churn": churn},
    )


def flash_crowd_stream(
    graph: DynamicGraph,
    num_updates: int,
    *,
    burst_size: int = 24,
    max_neighbors: int = 2,
    churn: float = 0.9,
    seed: Optional[int] = None,
) -> UpdateStream:
    """Generate bursts of transient vertices: arrive, interact, mostly leave.

    The bursty workload of the batched update engine: each burst inserts
    ``burst_size`` fresh vertices wired to up to ``max_neighbors`` random
    existing vertices, then deletes a ``churn`` fraction of exactly those
    vertices before the next burst (a flash crowd dispersing).  Because the
    arrivals carry few edges, many enter the maintained solution on arrival
    and force repair work on departure — expensive one-by-one, but an exact
    inverse pair under coalescing: with ``batch_size`` covering a burst and
    its retraction wave, the net effect is only the surviving fraction.
    """
    if not 0.0 <= churn <= 1.0:
        raise UpdateError("churn must lie in [0, 1]")
    if burst_size < 1:
        raise UpdateError("burst_size must be at least 1")
    builder = _StreamBuilder(graph, seed)
    produced = 0
    guard = 0
    while produced < num_updates and guard < 20 * num_updates + 100:
        guard += 1
        arrivals: List = []
        for _ in range(min(burst_size, num_updates - produced)):
            before = len(builder.operations)
            builder.insert_random_vertex(max_neighbors=max_neighbors)
            arrivals.append(builder.operations[before].vertex)
            produced += 1
        # Dispersal wave: the most recent arrivals leave first.  They sit at
        # the tail of the builder's vertex pool (nothing else appends during
        # a burst), so each one is popped off as it leaves — otherwise dead
        # labels accumulate and every later arrival's candidate scan grows
        # with the total number of past arrivals instead of the live graph.
        retract = int(len(arrivals) * churn)
        pool = builder._vertex_pool
        for vertex in reversed(arrivals[len(arrivals) - retract :]):
            if produced >= num_updates:
                break
            if builder.scratch.has_vertex(vertex):
                builder._emit(UpdateOperation.delete_vertex(vertex))
                if pool and pool[-1] == vertex:
                    pool.pop()
                produced += 1
    return UpdateStream(
        operations=builder.operations,
        description=(
            f"flash_crowd_stream(n={num_updates}, burst_size={burst_size}, "
            f"max_neighbors={max_neighbors}, churn={churn})"
        ),
        seed=seed,
        metadata={
            "burst_size": burst_size,
            "max_neighbors": max_neighbors,
            "churn": churn,
        },
    )


def insertion_only_stream(edges: Sequence, *, description: str = "insertion_only") -> UpdateStream:
    """Wrap a fixed edge list as a pure insertion stream (used by Theorem 1's reduction)."""
    operations = [UpdateOperation.insert_edge(u, v) for u, v in edges]
    return UpdateStream(operations=operations, description=description)
