"""Wire adapter: operation streams over newline-delimited JSON sockets.

The service gateway (:mod:`repro.service`) speaks NDJSON — one JSON object
per line — because it composes with every stream tool in existence and
because framing by newline keeps the reader allocation-bounded.  This module
is the *protocol adapter* between that wire form and the in-memory stream
protocol of :mod:`repro.updates.protocol`:

* operations cross the wire in the pipeline's canonical encoding
  (:func:`~repro.updates.protocol.encode_operation`), so a socket ingest,
  a stream-cache line and a fingerprinted checkpoint prefix all agree on
  one byte-level representation of an update;
* :func:`operations_from_wire` / :func:`operations_to_wire` convert whole
  batches with validation errors reported as
  :class:`~repro.exceptions.WireError` (never a bare ``KeyError`` from a
  hostile payload);
* :func:`wire_operation_stream` adapts a decoded wire batch back into a
  rich :class:`~repro.updates.protocol.OperationStream`, so server-side
  consumers (coalescer, engines) see exactly the protocol they already
  speak;
* :func:`encode_line` / :func:`decode_line` are the framing layer: compact
  JSON, one object per line, with a hard line-size cap — a client cannot
  make the server buffer an unbounded line.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence, Union

from repro.exceptions import UpdateError, WireError
from repro.updates.operations import UpdateOperation
from repro.updates.protocol import (
    LazyOperationStream,
    OperationStream,
    decode_operation,
    encode_operation,
)

#: Hard cap on one NDJSON line (requests *and* replies).  Large ingests are
#: expected to arrive as many lines of bounded batches, not one giant line —
#: the bound is what keeps a hostile client from ballooning server memory.
MAX_LINE_BYTES = 1 << 20


def encode_line(document: Dict) -> bytes:
    """Encode one wire message: compact JSON + newline, size-capped."""
    try:
        raw = json.dumps(document, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise WireError(f"cannot encode wire message: {exc}") from exc
    if len(raw) > MAX_LINE_BYTES:
        raise WireError(
            f"wire message of {len(raw)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte line cap; split the batch"
        )
    return raw + b"\n"


def decode_line(line: Union[bytes, str]) -> Dict:
    """Decode one wire line into a message dict (strict).

    Raises :class:`~repro.exceptions.WireError` on oversized lines, invalid
    UTF-8/JSON and non-object documents — the gateway turns this into an
    error reply instead of dying.
    """
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise WireError(
                f"wire line of {len(line)} bytes exceeds the "
                f"{MAX_LINE_BYTES}-byte cap"
            )
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireError(f"wire line is not valid UTF-8: {exc}") from exc
    try:
        document = json.loads(line)
    except ValueError as exc:
        raise WireError(f"wire line is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise WireError(
            f"wire message must be a JSON object, got {type(document).__name__}"
        )
    return document


def operations_to_wire(operations: Iterable[UpdateOperation]) -> List[List]:
    """Encode operations into their canonical wire entries."""
    return [encode_operation(operation) for operation in operations]


def operations_from_wire(entries: Sequence) -> List[UpdateOperation]:
    """Decode wire entries into operations, validating every one.

    A malformed entry names its batch index in the error, so a client can
    fix exactly the operation the server rejected.
    """
    if not isinstance(entries, (list, tuple)):
        raise WireError(
            f"operation batch must be a JSON array, got {type(entries).__name__}"
        )
    operations: List[UpdateOperation] = []
    for index, entry in enumerate(entries):
        if not isinstance(entry, (list, tuple)) or not entry:
            raise WireError(
                f"operation #{index} must be a non-empty array, got {entry!r}"
            )
        try:
            operations.append(decode_operation(entry))
        except (ValueError, TypeError, IndexError, UpdateError) as exc:
            raise WireError(f"operation #{index} is malformed: {exc}") from exc
    return operations


def wire_operation_stream(
    entries: Sequence, *, description: str = "wire"
) -> OperationStream:
    """Adapt a decoded wire batch to the rich stream protocol.

    The returned stream is replayable (it is backed by the materialised
    batch) and sized, so it flows through the coalescer, ``apply_batch``
    and any multi-pass consumer unchanged.
    """
    operations = operations_from_wire(entries)
    return LazyOperationStream(
        lambda: operations,
        description=description,
        length=len(operations),
        metadata={"transport": "ndjson"},
    )
