"""Update operations on dynamic graphs.

A dynamic graph in the paper is a sequence ``G_0, G_1, ...`` where each graph
differs from its predecessor by a single vertex/edge insertion or deletion.
:class:`UpdateOperation` is the value object representing one such step, and
:func:`apply_update` / :func:`invert_update` apply and undo it on a
:class:`~repro.graphs.dynamic_graph.DynamicGraph`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Sequence, Tuple

from repro.exceptions import UpdateError
from repro.graphs.dynamic_graph import DynamicGraph, Vertex


class UpdateKind(str, Enum):
    """The four structural update kinds supported by the maintenance algorithms."""

    INSERT_VERTEX = "insert_vertex"
    DELETE_VERTEX = "delete_vertex"
    INSERT_EDGE = "insert_edge"
    DELETE_EDGE = "delete_edge"


@dataclass(frozen=True)
class UpdateOperation:
    """One update in a dynamic graph sequence.

    Attributes
    ----------
    kind:
        Which structural change the operation performs.
    vertex:
        The affected vertex for vertex operations.
    edge:
        The affected ``(u, v)`` pair for edge operations.
    neighbors:
        For :data:`UpdateKind.INSERT_VERTEX`, the (existing) vertices the new
        vertex is connected to upon insertion.  The paper's model inserts a
        vertex together with its incident edges.
    """

    kind: UpdateKind
    vertex: Optional[Vertex] = None
    edge: Optional[Tuple[Vertex, Vertex]] = None
    neighbors: Tuple[Vertex, ...] = field(default_factory=tuple)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def insert_vertex(vertex: Vertex, neighbors: Sequence[Vertex] = ()) -> "UpdateOperation":
        """Create a vertex-insertion operation (optionally with incident edges)."""
        return UpdateOperation(
            kind=UpdateKind.INSERT_VERTEX, vertex=vertex, neighbors=tuple(neighbors)
        )

    @staticmethod
    def delete_vertex(vertex: Vertex) -> "UpdateOperation":
        """Create a vertex-deletion operation."""
        return UpdateOperation(kind=UpdateKind.DELETE_VERTEX, vertex=vertex)

    @staticmethod
    def insert_edge(u: Vertex, v: Vertex) -> "UpdateOperation":
        """Create an edge-insertion operation."""
        if u == v:
            raise UpdateError("cannot insert a self loop")
        return UpdateOperation(kind=UpdateKind.INSERT_EDGE, edge=(u, v))

    @staticmethod
    def delete_edge(u: Vertex, v: Vertex) -> "UpdateOperation":
        """Create an edge-deletion operation."""
        return UpdateOperation(kind=UpdateKind.DELETE_EDGE, edge=(u, v))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def is_insertion(self) -> bool:
        """True for insert-vertex / insert-edge operations."""
        return self.kind in (UpdateKind.INSERT_VERTEX, UpdateKind.INSERT_EDGE)

    @property
    def is_deletion(self) -> bool:
        """True for delete-vertex / delete-edge operations."""
        return not self.is_insertion

    @property
    def is_vertex_operation(self) -> bool:
        """True for vertex insert/delete operations."""
        return self.kind in (UpdateKind.INSERT_VERTEX, UpdateKind.DELETE_VERTEX)

    @property
    def is_edge_operation(self) -> bool:
        """True for edge insert/delete operations."""
        return not self.is_vertex_operation

    def touched_vertices(self) -> Tuple[Vertex, ...]:
        """Return the vertices whose neighbourhood the operation changes."""
        if self.is_vertex_operation:
            return (self.vertex,) + self.neighbors
        return self.edge

    def __str__(self) -> str:
        if self.kind is UpdateKind.INSERT_VERTEX:
            return f"+v {self.vertex} ~ {list(self.neighbors)}"
        if self.kind is UpdateKind.DELETE_VERTEX:
            return f"-v {self.vertex}"
        if self.kind is UpdateKind.INSERT_EDGE:
            return f"+e {self.edge}"
        return f"-e {self.edge}"


def apply_update(graph: DynamicGraph, operation: UpdateOperation) -> None:
    """Apply ``operation`` to ``graph`` in place.

    Raises
    ------
    UpdateError
        When the operation cannot be applied (missing vertex, duplicate edge,
        and so on).  The underlying graph exceptions are chained for context.
    """
    try:
        if operation.kind is UpdateKind.INSERT_VERTEX:
            graph.add_vertex(operation.vertex)
            for nbr in operation.neighbors:
                graph.add_edge(operation.vertex, nbr)
        elif operation.kind is UpdateKind.DELETE_VERTEX:
            graph.remove_vertex(operation.vertex)
        elif operation.kind is UpdateKind.INSERT_EDGE:
            graph.add_edge(*operation.edge)
        elif operation.kind is UpdateKind.DELETE_EDGE:
            graph.remove_edge(*operation.edge)
        else:  # pragma: no cover - exhaustive enum
            raise UpdateError(f"unknown update kind {operation.kind!r}")
    except UpdateError:
        raise
    except Exception as exc:
        raise UpdateError(f"cannot apply {operation}: {exc}") from exc


def invert_update(graph: DynamicGraph, operation: UpdateOperation) -> UpdateOperation:
    """Return the operation that undoes ``operation`` on the *current* ``graph``.

    Must be called *before* ``operation`` is applied for deletions (so the
    incident edges of a deleted vertex can be captured).
    """
    if operation.kind is UpdateKind.INSERT_VERTEX:
        return UpdateOperation.delete_vertex(operation.vertex)
    if operation.kind is UpdateKind.DELETE_VERTEX:
        if not graph.has_vertex(operation.vertex):
            raise UpdateError(f"cannot invert deletion of missing vertex {operation.vertex!r}")
        return UpdateOperation.insert_vertex(
            operation.vertex, sorted(graph.neighbors(operation.vertex), key=graph.order_of)
        )
    if operation.kind is UpdateKind.INSERT_EDGE:
        return UpdateOperation.delete_edge(*operation.edge)
    return UpdateOperation.insert_edge(*operation.edge)
