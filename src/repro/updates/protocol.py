"""The lazy operation-stream protocol: constant-memory streams end to end.

The paper's setting is an *unbounded* stream of updates, so no layer of the
pipeline may assume the whole stream fits in RAM.  This module defines the
small contract every producer and consumer speaks:

* an **operation stream** is any iterable of
  :class:`~repro.updates.operations.UpdateOperation`.  Rich streams
  additionally carry a ``description`` string, a ``metadata`` dict and a
  ``length_hint()`` method returning the number of operations *when it is
  known without consuming the stream* (``None`` otherwise).  The materialised
  :class:`~repro.updates.streams.UpdateStream` satisfies the protocol as-is;
  :class:`LazyOperationStream` wraps a replayable iterator factory.

* a :class:`StreamCursor` wraps one pass over a stream and maintains an
  **incremental identity fingerprint**: a running SHA-256 over the canonical
  encoding of every operation consumed so far.  The cursor is also the
  ``stream.read`` fault point of the resilience subsystem
  (:mod:`repro.resilience.faults`) — checkpointed runs consume their stream
  through a cursor, so a planned fault here simulates the source dying
  mid-replay at an exact operation count.  Checkpoints record
  ``(offset, fingerprint)`` instead of absolute offsets into an in-RAM list;
  resuming skips ahead through a fresh iterator and verifies the fingerprint
  of the skipped prefix, so a resumed run provably replays the same stream
  without either side ever materialising it.

* :func:`chunked` is the one sanctioned way to batch a stream: it yields
  lists of at most ``size`` operations via :func:`itertools.islice`, so no
  consumer ever holds more than one batch window resident.

Helper functions (:func:`stream_length_hint`, :func:`stream_description`,
:func:`stream_metadata`) read the optional attributes duck-typed, so plain
lists and generators remain valid streams.
"""

from __future__ import annotations

import hashlib
import os
import queue
import threading
from itertools import islice
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.resilience.faults import STREAM_READ, trip
from repro.updates.operations import UpdateKind, UpdateOperation, apply_update


# --------------------------------------------------------------------- #
# Canonical operation encoding (shared by fingerprints and stream caches)
# --------------------------------------------------------------------- #
def encode_operation(operation: UpdateOperation) -> List:
    """Encode an operation as a compact JSON-serialisable list.

    The canonical wire form of the pipeline: the chunked stream cache
    persists it and :class:`StreamCursor` hashes its ``repr`` for the
    identity fingerprint.  Stable across sessions (no id()/hash values).
    """
    kind = operation.kind
    if kind is UpdateKind.INSERT_VERTEX:
        return ["+v", operation.vertex, list(operation.neighbors)]
    if kind is UpdateKind.DELETE_VERTEX:
        return ["-v", operation.vertex]
    if kind is UpdateKind.INSERT_EDGE:
        return ["+e", operation.edge[0], operation.edge[1]]
    return ["-e", operation.edge[0], operation.edge[1]]


def decode_operation(entry: Sequence) -> UpdateOperation:
    """Inverse of :func:`encode_operation`."""
    tag = entry[0]
    if tag == "+v":
        return UpdateOperation.insert_vertex(entry[1], entry[2])
    if tag == "-v":
        return UpdateOperation.delete_vertex(entry[1])
    if tag == "+e":
        return UpdateOperation.insert_edge(entry[1], entry[2])
    if tag == "-e":
        return UpdateOperation.delete_edge(entry[1], entry[2])
    raise ValueError(f"unknown operation tag {tag!r}")


#: Fingerprint of the empty prefix (offset 0) — what a cursor reports before
#: consuming anything, and what a checkpoint taken at offset 0 would record.
EMPTY_FINGERPRINT = hashlib.sha256().hexdigest()


class StreamCursor:
    """One hashing pass over an operation stream.

    Wraps an iterator (or iterable) and tracks ``offset`` (operations
    consumed) plus the incremental SHA-256 ``fingerprint`` of the consumed
    prefix.  The fingerprint is a pure function of the operation sequence —
    two streams agree on a prefix iff their cursors agree on
    ``(offset, fingerprint)`` — which is what makes offset-based
    checkpoint/resume sound without a materialised list on either side.
    """

    __slots__ = ("_iterator", "_digest", "offset")

    def __init__(self, operations: Iterable[UpdateOperation]) -> None:
        self._iterator = iter(operations)
        self._digest = hashlib.sha256()
        self.offset = 0

    def __iter__(self) -> "StreamCursor":
        return self

    def __next__(self) -> UpdateOperation:
        trip(STREAM_READ)
        operation = next(self._iterator)
        self._digest.update(repr(encode_operation(operation)).encode("utf-8"))
        self.offset += 1
        return operation

    @property
    def fingerprint(self) -> str:
        """Hex SHA-256 of the canonical encoding of the consumed prefix."""
        return self._digest.hexdigest()

    def detach(self) -> Iterator[UpdateOperation]:
        """Hand back the underlying iterator and retire the cursor.

        Used when fingerprinting is only needed for a prefix (a resume
        fast-forward): the remaining operations flow through the raw
        iterator with zero hashing overhead.  The cursor yields nothing
        afterwards.
        """
        iterator = self._iterator
        self._iterator = iter(())
        return iterator

    def take(self, count: int) -> List[UpdateOperation]:
        """Consume and return up to ``count`` operations (fewer at the end)."""
        return list(islice(self, count))

    def skip(self, count: int) -> int:
        """Consume up to ``count`` operations, discarding them; return how many.

        The discarded operations still flow through the fingerprint — this is
        the resume fast-forward: afterwards ``(offset, fingerprint)`` matches
        a checkpoint taken at the same position of the same stream.
        """
        skipped = 0
        for _ in islice(self, count):
            skipped += 1
        return skipped


def chunked(
    operations: Iterable[UpdateOperation], size: int
) -> Iterator[List[UpdateOperation]]:
    """Yield lists of at most ``size`` operations until the stream ends.

    The canonical batching loop: at any moment exactly one window is
    resident, whatever the stream length.
    """
    if size < 1:
        raise ValueError("chunk size must be at least 1")
    iterator = iter(operations)
    while True:
        chunk = list(islice(iterator, size))
        if not chunk:
            return
        yield chunk


def prefetch_enabled() -> bool:
    """Whether the pipelined stream prefetcher is switched on.

    Controlled by the ``REPRO_PREFETCH`` environment variable (default off)
    and read at *iteration* time, so a test can flip it per replay without
    re-opening streams.  Prefetching is a pure latency optimisation — the
    operation sequence, fingerprints and error boundaries are bit-identical
    either way (see :func:`prefetch_chunks`).
    """
    return os.environ.get("REPRO_PREFETCH", "0") not in ("", "0")


def prefetch_chunks(chunks: Iterator[List], *, depth: int = 2) -> Iterator[List]:
    """Run a chunk iterator on a background thread, ``depth`` chunks ahead.

    The double-buffered half of the pipelined ingest path: while the
    consumer (the engine's repair pass) works through the current decoded
    chunk, the producer thread reads and decodes the next one.  Order and
    error semantics are exactly the synchronous path's:

    * chunks are delivered FIFO, so the consumer sees the same sequence;
    * any exception the producer raises — including injected faults from
      the ``stream.read`` / ``cache.read`` fault points — is queued *behind*
      the chunks that preceded it and re-raised at the same chunk boundary
      the synchronous iteration would have raised it;
    * closing the returned generator early (consumer abandons the stream)
      stops the producer thread promptly instead of leaking it.

    ``depth`` bounds residency: at most ``depth`` decoded chunks plus the
    one being consumed are live, so peak memory matches the synchronous
    path's O(chunk) bound up to a small constant factor.
    """
    if depth < 1:
        raise ValueError("prefetch depth must be at least 1")
    buffer: "queue.Queue" = queue.Queue(maxsize=depth)
    stop = threading.Event()
    _CHUNK, _DONE, _ERROR = 0, 1, 2

    def produce() -> None:
        try:
            try:
                for chunk in chunks:
                    while not stop.is_set():
                        try:
                            buffer.put((_CHUNK, chunk), timeout=0.1)
                            break
                        except queue.Full:
                            continue
                    if stop.is_set():
                        return
                outcome = (_DONE, None)
            except BaseException as exc:  # re-raised on the consumer side
                outcome = (_ERROR, exc)
            while not stop.is_set():
                try:
                    buffer.put(outcome, timeout=0.1)
                    return
                except queue.Full:
                    continue
        finally:
            # Release the source promptly (file handles in generator-based
            # producers) instead of waiting for garbage collection.
            close = getattr(chunks, "close", None)
            if close is not None:
                close()

    worker = threading.Thread(
        target=produce, name="repro-prefetch", daemon=True
    )
    worker.start()
    try:
        while True:
            kind, value = buffer.get()
            if kind == _CHUNK:
                yield value
            elif kind == _DONE:
                return
            else:
                raise value
    finally:
        stop.set()
        worker.join()


class OperationStream:
    """Base class for rich lazy streams (iterable + provenance metadata).

    Subclasses implement :meth:`__iter__`.  ``description`` and ``metadata``
    mirror :class:`~repro.updates.streams.UpdateStream`; ``length_hint``
    returns the operation count only when it is already known — it must
    never consume the stream.  Deliberately **no** ``__len__``: sized
    consumers must go through :func:`stream_length_hint` and handle ``None``.
    """

    description: str = ""

    def __init__(
        self, *, description: str = "", metadata: Optional[Dict] = None
    ) -> None:
        self.description = description
        self._metadata: Dict = dict(metadata or {})

    def __iter__(self) -> Iterator[UpdateOperation]:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def metadata(self) -> Dict:
        return self._metadata

    def length_hint(self) -> Optional[int]:
        return None

    def replayable(self) -> bool:
        """Whether :meth:`__iter__` supports more than one full pass.

        Default ``True``; streams backed by a one-shot source override.
        Multi-pass consumers (e.g. a competition running several algorithms
        over the same stream) must check this instead of discovering an
        exhausted iterator as a silent empty run.
        """
        return True

    def cursor(self) -> StreamCursor:
        """Start a fingerprinting pass over the stream."""
        return StreamCursor(self)

    # Conveniences shared by every rich stream (one pass over self each).
    def apply_all(self, graph) -> None:
        """Apply every operation in order to ``graph`` (mutates it in place)."""
        for operation in self:
            apply_update(graph, operation)

    def counts_by_kind(self) -> Dict:
        """Return ``{UpdateKind: count}`` (one pass over the stream)."""
        counts: Dict = {}
        for operation in self:
            counts[operation.kind] = counts.get(operation.kind, 0) + 1
        return counts


class LazyOperationStream(OperationStream):
    """Wrap a replayable iterator factory as an :class:`OperationStream`.

    ``factory`` is called once per :meth:`__iter__`; pass a generator
    *function* (not a generator object) to get a replayable stream.  A
    one-shot iterable also works but supports only a single pass.
    """

    def __init__(
        self,
        factory: Callable[[], Iterable[UpdateOperation]],
        *,
        description: str = "",
        metadata: Optional[Dict] = None,
        length: Optional[int] = None,
        replay: bool = True,
    ) -> None:
        super().__init__(description=description, metadata=metadata)
        self._factory = factory
        self._length = length
        self._replay = replay

    def __iter__(self) -> Iterator[UpdateOperation]:
        return iter(self._factory())

    def length_hint(self) -> Optional[int]:
        return self._length

    def replayable(self) -> bool:
        return self._replay


def as_operation_stream(
    operations: Iterable[UpdateOperation], *, description: str = ""
) -> OperationStream:
    """Adapt any iterable of operations to the rich protocol.

    Streams that already carry ``description``/``length_hint`` (an
    :class:`OperationStream` or an
    :class:`~repro.updates.streams.UpdateStream`) pass through unchanged —
    the thin adapter that lets list-based streams keep working everywhere
    the pipeline now expects the protocol.
    """
    if isinstance(operations, OperationStream) or hasattr(operations, "length_hint"):
        return operations  # type: ignore[return-value]
    if isinstance(operations, (list, tuple)):
        sized: Sequence[UpdateOperation] = operations
        return LazyOperationStream(
            lambda: sized, description=description, length=len(sized)
        )
    # A bare iterator/generator is one-shot: wrapping must not launder that
    # away (multi-pass consumers check replayable() to refuse such streams
    # instead of silently measuring empty re-runs).
    one_shot = iter(operations) is operations
    return LazyOperationStream(
        lambda: operations, description=description, replay=not one_shot
    )


# --------------------------------------------------------------------- #
# Duck-typed readers (work on UpdateStream, OperationStream, lists, …)
# --------------------------------------------------------------------- #
def stream_length_hint(stream: Iterable[UpdateOperation]) -> Optional[int]:
    """Best-effort operation count without consuming ``stream``.

    Prefers a ``length_hint()`` method (the lazy protocol), falls back to
    ``len()`` for sized containers, and returns ``None`` for generators and
    unsized streams — callers must treat ``None`` as "unknown", never as 0.
    """
    hint = getattr(stream, "length_hint", None)
    if callable(hint):
        return hint()
    try:
        return len(stream)  # type: ignore[arg-type]
    except TypeError:
        return None


def stream_description(stream: Iterable[UpdateOperation]) -> str:
    """The stream's provenance description ('' when it carries none)."""
    return getattr(stream, "description", "") or ""


def stream_metadata(stream: Iterable[UpdateOperation]) -> Dict:
    """The stream's metadata dict ({} when it carries none) — always O(1).

    Rich streams may compute summary metadata lazily behind their
    ``metadata`` property (a full pass over a replayable source); this
    helper must stay cheap, so for :class:`OperationStream` subclasses it
    reads the base class's raw dict directly — whatever is *currently*
    known — and never triggers that pass.
    """
    metadata = getattr(stream, "_metadata", None)
    if isinstance(metadata, dict):
        return metadata
    metadata = getattr(stream, "metadata", None)
    return metadata if isinstance(metadata, dict) else {}


def fingerprint_prefix(
    stream: Iterable[UpdateOperation], offset: Optional[int] = None
) -> Tuple[int, str]:
    """Consume (up to) ``offset`` operations and return ``(consumed, fingerprint)``.

    With ``offset=None`` the whole stream is consumed — the stream's full
    identity.  Purely a convenience over :class:`StreamCursor`.
    """
    cursor = StreamCursor(stream)
    if offset is None:
        for _ in cursor:
            pass
    else:
        cursor.skip(offset)
    return cursor.offset, cursor.fingerprint
