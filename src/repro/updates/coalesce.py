"""Stream coalescing: reduce an update batch to its minimal net effect.

The paper's maintenance framework only requires the solution to be k-maximal
at *observation points*, which licenses treating a batch of updates as a
single compound change.  Consecutive operations frequently cancel outright
(an edge inserted and deleted inside the same window, a vertex that flickers
in and out) or repeat work on the same entity (an edge toggled several
times).  :func:`coalesce_batch` simulates a batch against the *current* graph
without mutating it and returns the minimal net effect, already grouped into
the four phases the bulk-apply path consumes.

Correctness contract (property-tested in ``tests/test_batch_engine.py``):

* applying the net effect to the graph yields a final graph *identical*
  (same labels, same adjacency) to applying the original batch in order;
* the net phases are valid in their emission order: edge deletions between
  surviving vertices, then vertex deletions (incident edges implicit), then
  vertex insertions carrying every incident edge whose other endpoint
  already exists, then the remaining edge insertions;
* when the net effect drives :meth:`DynamicMISBase.apply_batch`, the
  maintained solution is k-maximal at the batch boundary and size-equivalent
  with one-by-one application under :mod:`repro.core.verification` — both
  runs certify as k-maximal on the identical final graph (batched and
  unbatched repairs may pick different, equally valid, k-maximal solutions).

What coalescing does **not** preserve is the intermediate trajectory: a
vertex deleted and re-inserted inside one batch keeps its label but is never
structurally removed by the net sequence (its adjacency diff is emitted as
edge operations), so its interned insertion index differs from the churned
run's.

Performance: this function runs once per batch on the stream hot path, so it
is written as one flat pass with plain dicts — no helper objects, no
per-operation allocations beyond the touched-entity entries.

Validation matches per-operation semantics: every operation must be legal at
its position in the input sequence (duplicate insertions, deletions of
missing entities, edges referencing absent — including batch-deleted or
only-later-inserted — vertices all raise
:class:`~repro.exceptions.UpdateError`).  Because validation completes
during the simulation, a coalesced net effect can never fail mid-apply:
:meth:`DynamicMISBase.apply_batch` either rejects the batch before touching
any state or applies it completely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Tuple

from repro.exceptions import UpdateError
from repro.graphs.dynamic_graph import DynamicGraph, Vertex
from repro.resilience.faults import COALESCE, trip
from repro.updates.operations import UpdateKind, UpdateOperation


@dataclass
class CoalescedBatch:
    """The net effect of a batch, grouped into valid application phases."""

    #: Net edge deletions between vertices that survive the batch.
    edge_deletions: List[Tuple[Vertex, Vertex]]
    #: Net vertex deletions (their incident edges vanish implicitly).
    vertex_deletions: List[Vertex]
    #: Net vertex insertions with the incident new edges that can ride along.
    vertex_insertions: List[Tuple[Vertex, Tuple[Vertex, ...]]]
    #: Remaining net edge insertions (both endpoints exist by this phase).
    edge_insertions: List[Tuple[Vertex, Vertex]]
    #: Size of the input batch.
    num_input: int = 0

    @property
    def num_net_operations(self) -> int:
        """Number of operations the net effect consists of."""
        return (
            len(self.edge_deletions)
            + len(self.vertex_deletions)
            + len(self.vertex_insertions)
            + len(self.edge_insertions)
        )

    @property
    def num_coalesced(self) -> int:
        """Input operations cancelled or merged away."""
        return self.num_input - self.num_net_operations

    @property
    def operations(self) -> List[UpdateOperation]:
        """Materialise the net effect as a valid operation sequence.

        Built on demand (the bulk-apply hot path consumes the phase lists
        directly and never pays for these objects).
        """
        ops: List[UpdateOperation] = [
            UpdateOperation.delete_edge(u, v) for u, v in self.edge_deletions
        ]
        ops.extend(UpdateOperation.delete_vertex(v) for v in self.vertex_deletions)
        ops.extend(
            UpdateOperation.insert_vertex(v, neighbors)
            for v, neighbors in self.vertex_insertions
        )
        ops.extend(
            UpdateOperation.insert_edge(u, v) for u, v in self.edge_insertions
        )
        return ops

    def __len__(self) -> int:
        return self.num_net_operations

    def __iter__(self):
        return iter(self.operations)


def coalesce_batch(
    graph: DynamicGraph, operations: Iterable[UpdateOperation]
) -> CoalescedBatch:
    """Reduce ``operations`` to their net effect against ``graph``.

    ``graph`` must be the graph the batch is about to be applied to; it is
    only read, never mutated.  ``operations`` may be any iterable — it is
    consumed in one pass and never materialised, so the caller's batch
    window is the only resident copy.  Raises
    :class:`~repro.exceptions.UpdateError` on batch-internal contradictions
    (see the module docstring for the exact validation contract).
    """
    # The ``coalesce`` fault point fires before any work: the batch is not
    # yet validated and the graph is never mutated here, so an injected
    # crash leaves the engine exactly at the previous batch boundary.
    trip(COALESCE)
    # label -> [existed_before_batch, exists_now]
    v_state: Dict[Vertex, List[bool]] = {}
    # edge key -> [u, v, existed_before_batch, exists_now].  Invariant: a key
    # absent from e_state means neither endpoint was deleted inside the batch
    # (vertex deletion eagerly sweeps every incident edge in), hence the
    # edge's current presence equals its presence in the live graph.
    e_state: Dict[Hashable, list] = {}
    v_get = v_state.get
    e_get = e_state.get
    # Incidence index label -> touched-edge entries, activated lazily by the
    # first vertex operation: edge-only batches never pay for it, while
    # vertex-churn batches avoid an O(|e_state|) scan per deletion.  On
    # activation the entries created so far are indexed retroactively.
    incident: Dict[Vertex, List[list]] = {}
    indexing = False
    # Inlined graph probes: one pass over dense views, no method calls on
    # the per-operation path.  Edge keys are normalised endpoint pairs
    # (ordered tuples when the labels compare, a frozenset otherwise), built
    # inline at every site.
    slot_map = graph.slot_map_view()
    slot_get = slot_map.get
    adj = graph.adjacency_slots_view()
    labels = graph.labels_view()
    INSERT_EDGE = UpdateKind.INSERT_EDGE
    DELETE_EDGE = UpdateKind.DELETE_EDGE
    INSERT_VERTEX = UpdateKind.INSERT_VERTEX

    def _index_all() -> None:
        """Retroactively index every touched edge under both endpoints."""
        inc_get = incident.get
        for e_entry in e_state.values():
            for end in (e_entry[0], e_entry[1]):
                bucket = inc_get(end)
                if bucket is None:
                    incident[end] = [e_entry]
                else:
                    bucket.append(e_entry)

    num_input = 0
    for op in operations:
        num_input += 1
        kind = op.kind
        if kind is INSERT_EDGE or kind is DELETE_EDGE:
            u, v = op.edge
            # Normalised key: an ordered tuple when the labels form a total
            # order, a frozenset otherwise (partially ordered labels such as
            # frozensets compare False both ways without raising).
            try:
                if u <= v:  # type: ignore[operator]
                    key = (u, v)
                elif v <= u:  # type: ignore[operator]
                    key = (v, u)
                else:
                    key = frozenset((u, v))
            except TypeError:
                key = frozenset((u, v))
            entry = e_get(key)
            if kind is INSERT_EDGE:
                # Both endpoints must be present *at this point of the
                # batch* — in the graph and not batch-deleted, or inserted
                # earlier in the batch.  This keeps batched validation
                # identical to per-operation semantics (an edge referencing
                # a vertex only inserted later is rejected, not reordered)
                # and guarantees a coalesced net effect can never fail
                # mid-apply: the operations the coalescer emits are fully
                # validated before any state is mutated.
                v_entry = v_get(u) if v_state else None
                if (
                    (not v_entry[1])
                    if v_entry is not None
                    else u not in slot_map
                ):
                    raise UpdateError(
                        f"batch inserts edge with missing endpoint {u!r}"
                    )
                v_entry = v_get(v) if v_state else None
                if (
                    (not v_entry[1])
                    if v_entry is not None
                    else v not in slot_map
                ):
                    raise UpdateError(
                        f"batch inserts edge with missing endpoint {v!r}"
                    )
                if entry is None:
                    su = slot_get(u)
                    if su is not None:
                        sv = slot_get(v)
                        if sv is not None and sv in adj[su]:
                            raise UpdateError(
                                f"batch inserts duplicate edge ({u!r}, {v!r})"
                            )
                    entry = e_state[key] = [u, v, False, True]
                    if indexing:
                        incident.setdefault(u, []).append(entry)
                        incident.setdefault(v, []).append(entry)
                elif entry[3]:
                    raise UpdateError(
                        f"batch inserts duplicate edge ({u!r}, {v!r})"
                    )
                else:
                    entry[3] = True
            else:
                if entry is None:
                    su = slot_get(u)
                    sv = slot_get(v) if su is not None else None
                    if sv is None or sv not in adj[su]:
                        raise UpdateError(
                            f"batch deletes missing edge ({u!r}, {v!r})"
                        )
                    entry = e_state[key] = [u, v, True, False]
                    if indexing:
                        incident.setdefault(u, []).append(entry)
                        incident.setdefault(v, []).append(entry)
                elif not entry[3]:
                    raise UpdateError(
                        f"batch deletes missing edge ({u!r}, {v!r})"
                    )
                else:
                    entry[3] = False
        elif kind is INSERT_VERTEX:
            if not indexing:
                indexing = True
                _index_all()
            label = op.vertex
            entry = v_get(label)
            if entry is None:
                if label in slot_map:
                    raise UpdateError(
                        f"batch inserts vertex {label!r} that is already present"
                    )
                v_state[label] = [False, True]
            elif entry[1]:
                raise UpdateError(
                    f"batch inserts vertex {label!r} that is already present"
                )
            else:
                entry[1] = True
            neighbors = op.neighbors
            if not neighbors:
                continue
            own_bucket = incident.get(label)
            if own_bucket is None:
                own_bucket = incident[label] = []
            for nbr in neighbors:
                if nbr == label:
                    raise UpdateError(f"batch inserts self loop on {label!r}")
                nbr_entry = v_get(nbr)
                if nbr_entry is None:
                    if nbr not in slot_map:
                        raise UpdateError(
                            f"batch inserts edge with missing endpoint {nbr!r}"
                        )
                elif not nbr_entry[1]:
                    raise UpdateError(
                        f"batch inserts edge with missing endpoint {nbr!r}"
                    )
                try:
                    if label <= nbr:  # type: ignore[operator]
                        key = (label, nbr)
                    elif nbr <= label:  # type: ignore[operator]
                        key = (nbr, label)
                    else:
                        key = frozenset((label, nbr))
                except TypeError:
                    key = frozenset((label, nbr))
                e_entry = e_get(key)
                if e_entry is None:
                    # label was absent a moment ago, so the edge cannot
                    # pre-exist unless label is churning — then the sweep of
                    # its deletion already created an entry.  A fresh entry
                    # therefore means "new edge".
                    e_entry = e_state[key] = [label, nbr, False, True]
                    own_bucket.append(e_entry)
                    nbr_bucket = incident.get(nbr)
                    if nbr_bucket is None:
                        incident[nbr] = [e_entry]
                    else:
                        nbr_bucket.append(e_entry)
                elif e_entry[3]:
                    raise UpdateError(
                        f"batch inserts duplicate edge ({label!r}, {nbr!r})"
                    )
                else:
                    e_entry[3] = True
        else:  # DELETE_VERTEX (any unknown kind falls through to UpdateError)
            if kind is not UpdateKind.DELETE_VERTEX:  # pragma: no cover
                raise UpdateError(f"unknown update kind {kind!r}")
            if not indexing:
                indexing = True
                _index_all()
            label = op.vertex
            slot = slot_get(label)
            entry = v_get(label)
            if entry is None:
                if slot is None:
                    raise UpdateError(f"batch deletes missing vertex {label!r}")
                v_state[label] = entry = [True, False]
            elif not entry[1]:
                raise UpdateError(f"batch deletes missing vertex {label!r}")
            else:
                entry[1] = False
            # Eagerly sweep every incident edge so the e_state invariant
            # holds.  Graph-side edges first (only deletions of graph
            # vertices can have untouched incident edges) …
            if slot is not None and adj[slot]:
                bucket = incident.get(label)
                if bucket is None:
                    bucket = incident[label] = []
                for t in adj[slot]:
                    other = labels[t]
                    try:
                        if label <= other:  # type: ignore[operator]
                            key = (label, other)
                        elif other <= label:  # type: ignore[operator]
                            key = (other, label)
                        else:
                            key = frozenset((label, other))
                    except TypeError:
                        key = frozenset((label, other))
                    e_entry = e_get(key)
                    if e_entry is None:
                        e_entry = e_state[key] = [label, other, True, False]
                        bucket.append(e_entry)
                        other_bucket = incident.get(other)
                        if other_bucket is None:
                            incident[other] = [e_entry]
                        else:
                            other_bucket.append(e_entry)
                    else:
                        e_entry[3] = False
            # … then every batch-touched incident edge, via the index.
            for e_entry in incident.get(label, ()):
                e_entry[3] = False

    # ------------------------------------------------------------------ #
    # Emission: four phases, each valid given the previous ones.
    # ------------------------------------------------------------------ #
    edge_deletions: List[Tuple[Vertex, Vertex]] = []
    new_edges: List[Tuple[Vertex, Vertex]] = []
    if v_state:
        for u, v, before, now in e_state.values():
            if before:
                if not now:
                    eu = v_get(u)
                    ev = v_get(v)
                    if (eu is None or eu[1]) and (ev is None or ev[1]):
                        edge_deletions.append((u, v))
            elif now:
                new_edges.append((u, v))
    else:
        for u, v, before, now in e_state.values():
            if before:
                if not now:
                    edge_deletions.append((u, v))
            elif now:
                new_edges.append((u, v))

    vertex_deletions: List[Vertex] = []
    vertex_insertions: List[Tuple[Vertex, Tuple[Vertex, ...]]] = []
    edge_insertions: List[Tuple[Vertex, Vertex]]
    pending: Dict[Vertex, int] = {}
    if v_state:
        for label, (before, now) in v_state.items():
            if before and not now:
                vertex_deletions.append(label)
            elif now and not before:
                pending[label] = len(pending)  # first-touch emission order
    if pending:
        # Attach each new edge with a brand-new endpoint to whichever of its
        # new endpoints is inserted later, so the other side always exists.
        edge_insertions = []
        attach: Dict[Vertex, List[Vertex]] = {}
        pending_get = pending.get
        for u, v in new_edges:
            pu = pending_get(u)
            pv = pending_get(v)
            if pu is None:
                if pv is None:
                    edge_insertions.append((u, v))
                else:
                    attach.setdefault(v, []).append(u)
            elif pv is None or pu >= pv:
                attach.setdefault(u, []).append(v)
            else:
                attach.setdefault(v, []).append(u)
        empty: Tuple[Vertex, ...] = ()
        for label in pending:
            nbrs = attach.get(label)
            vertex_insertions.append((label, tuple(nbrs) if nbrs else empty))
    else:
        edge_insertions = new_edges

    return CoalescedBatch(
        edge_deletions=edge_deletions,
        vertex_deletions=vertex_deletions,
        vertex_insertions=vertex_insertions,
        edge_insertions=edge_insertions,
        num_input=num_input,
    )
