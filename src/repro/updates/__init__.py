"""Update operations, stream generators and batch coalescing for dynamic graphs."""

from repro.updates.coalesce import CoalescedBatch, coalesce_batch
from repro.updates.operations import UpdateKind, UpdateOperation, apply_update, invert_update
from repro.updates.streams import (
    UpdateStream,
    burst_stream,
    bursty_churn_stream,
    flash_crowd_stream,
    insertion_only_stream,
    mixed_update_stream,
    random_edge_stream,
    random_vertex_stream,
    sliding_window_stream,
)

__all__ = [
    "UpdateKind",
    "UpdateOperation",
    "apply_update",
    "invert_update",
    "CoalescedBatch",
    "coalesce_batch",
    "UpdateStream",
    "random_edge_stream",
    "random_vertex_stream",
    "mixed_update_stream",
    "sliding_window_stream",
    "burst_stream",
    "bursty_churn_stream",
    "flash_crowd_stream",
    "insertion_only_stream",
]
