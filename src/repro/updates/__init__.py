"""Update operations, stream generators, batch coalescing and the lazy
stream protocol for dynamic graphs."""

from repro.updates.coalesce import CoalescedBatch, coalesce_batch
from repro.updates.operations import UpdateKind, UpdateOperation, apply_update, invert_update
from repro.updates.protocol import (
    EMPTY_FINGERPRINT,
    LazyOperationStream,
    OperationStream,
    StreamCursor,
    as_operation_stream,
    chunked,
    decode_operation,
    encode_operation,
    fingerprint_prefix,
    stream_description,
    stream_length_hint,
    stream_metadata,
)
from repro.updates.wire import (
    MAX_LINE_BYTES,
    decode_line,
    encode_line,
    operations_from_wire,
    operations_to_wire,
    wire_operation_stream,
)
from repro.updates.streams import (
    UpdateStream,
    burst_stream,
    bursty_churn_stream,
    flash_crowd_stream,
    insertion_only_stream,
    mixed_update_stream,
    random_edge_stream,
    random_vertex_stream,
    sliding_window_stream,
)

__all__ = [
    "UpdateKind",
    "UpdateOperation",
    "apply_update",
    "invert_update",
    "CoalescedBatch",
    "coalesce_batch",
    "OperationStream",
    "LazyOperationStream",
    "StreamCursor",
    "EMPTY_FINGERPRINT",
    "as_operation_stream",
    "chunked",
    "encode_operation",
    "decode_operation",
    "fingerprint_prefix",
    "stream_description",
    "stream_length_hint",
    "stream_metadata",
    "MAX_LINE_BYTES",
    "encode_line",
    "decode_line",
    "operations_to_wire",
    "operations_from_wire",
    "wire_operation_stream",
    "UpdateStream",
    "random_edge_stream",
    "random_vertex_stream",
    "mixed_update_stream",
    "sliding_window_stream",
    "burst_stream",
    "bursty_churn_stream",
    "flash_crowd_stream",
    "insertion_only_stream",
]
