"""Update operations and update-stream generators for dynamic graphs."""

from repro.updates.operations import UpdateKind, UpdateOperation, apply_update, invert_update
from repro.updates.streams import (
    UpdateStream,
    burst_stream,
    insertion_only_stream,
    mixed_update_stream,
    random_edge_stream,
    random_vertex_stream,
    sliding_window_stream,
)

__all__ = [
    "UpdateKind",
    "UpdateOperation",
    "apply_update",
    "invert_update",
    "UpdateStream",
    "random_edge_stream",
    "random_vertex_stream",
    "mixed_update_stream",
    "sliding_window_stream",
    "burst_stream",
    "insertion_only_stream",
]
