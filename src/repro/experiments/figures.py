"""Reproduction of the paper's figures (5–10).

Figures in the paper are bar/line charts; here each function returns the
underlying data series so they can be rendered as text tables (see
:mod:`repro.experiments.reporting`), asserted on in tests, or plotted by a
downstream user.  All functions accept a profile name or
:class:`~repro.experiments.datasets.ExperimentProfile`.

Mapping to the paper:

* :func:`figure5_easy_performance` — Fig 5(a/b/c): response time and memory on
  easy graphs for the small and large update streams,
* :func:`figure6_hard_performance` — Fig 6(a/b): response time and memory on
  hard graphs,
* :func:`figure7_optimizations` — Fig 7(a–d): lazy collection and perturbation,
* :func:`figure8_update_scalability` — Fig 8(a–d): scalability in the number
  of updates,
* :func:`figure9_k_sweep` — Fig 9(a/b): effect of the swap depth ``k``,
* :func:`figure10_power_law` — Fig 10(a/b): power-law random graphs with
  varying exponent β.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.framework import KSwapFramework
from repro.experiments.datasets import (
    ExperimentProfile,
    build_update_stream,
    dataset_and_stream,
    get_profile,
    load_profile_dataset,
)
from repro.experiments.metrics import RunMeasurement
from repro.experiments.runner import (
    PAPER_ALGORITHMS,
    compute_reference,
    run_algorithm,
    run_competition,
)
from repro.generators.power_law import power_law_random_graph
from repro.updates.streams import mixed_update_stream


# --------------------------------------------------------------------------- #
# Figures 5 and 6: response time and memory across datasets
# --------------------------------------------------------------------------- #
def performance_sweep(
    profile: ExperimentProfile,
    datasets: Sequence[str],
    num_updates: int,
    *,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
) -> List[Dict[str, object]]:
    """Run every algorithm on every dataset and record time/memory/size rows."""
    rows: List[Dict[str, object]] = []
    for name in datasets:
        graph, stream = dataset_and_stream(profile, name, num_updates)
        measurements = run_competition(
            graph,
            stream,
            dataset=name,
            algorithms=algorithms,
            time_limit_seconds=profile.time_limit_seconds,
            attach_reference=False,
        )
        for algorithm in algorithms:
            measurement = measurements[algorithm]
            rows.append(
                {
                    "dataset": name,
                    "algorithm": algorithm,
                    "updates": measurement.num_updates,
                    "time_s": round(measurement.elapsed_seconds, 4),
                    "memory": measurement.memory_footprint,
                    "final_size": measurement.final_size,
                    "finished": measurement.finished,
                }
            )
    return rows


def figure5_easy_performance(
    profile="quick", *, datasets: Optional[Sequence[str]] = None
) -> Dict[str, List[Dict[str, object]]]:
    """Fig 5: response time (small and large streams) and memory on easy graphs."""
    profile = get_profile(profile)
    names = list(datasets) if datasets is not None else list(profile.easy_datasets)
    small = performance_sweep(profile, names, profile.updates_small)
    large = performance_sweep(profile, names, profile.updates_large)
    memory = [
        {
            "dataset": row["dataset"],
            "algorithm": row["algorithm"],
            "memory": row["memory"],
        }
        for row in small
    ]
    return {
        "response_time_small": small,
        "memory": memory,
        "response_time_large": large,
    }


def figure6_hard_performance(
    profile="quick", *, datasets: Optional[Sequence[str]] = None
) -> Dict[str, List[Dict[str, object]]]:
    """Fig 6: response time and memory on hard graphs for the large stream."""
    profile = get_profile(profile)
    names = list(datasets) if datasets is not None else list(profile.hard_datasets)
    rows = performance_sweep(profile, names, profile.updates_large)
    memory = [
        {
            "dataset": row["dataset"],
            "algorithm": row["algorithm"],
            "memory": row["memory"],
        }
        for row in rows
    ]
    return {"response_time": rows, "memory": memory}


# --------------------------------------------------------------------------- #
# Figure 7: optimizations (lazy collection, perturbation, k trade-off)
# --------------------------------------------------------------------------- #
def figure7_optimizations(
    profile="quick", *, datasets: Optional[Sequence[str]] = None
) -> Dict[str, List[Dict[str, object]]]:
    """Fig 7: effect of lazy collection and perturbation on time and memory."""
    profile = get_profile(profile)
    names = list(datasets) if datasets is not None else list(profile.easy_datasets[:2])
    lazy_pairs = [
        ("DyOneSwap", "DyOneSwap+lazy"),
        ("DyTwoSwap", "DyTwoSwap+lazy"),
    ]
    perturb_pairs = [
        ("DyOneSwap", "DyOneSwap+perturb"),
        ("DyTwoSwap", "DyTwoSwap+perturb"),
    ]
    lazy_algorithms = sorted({name for pair in lazy_pairs for name in pair})
    perturb_algorithms = sorted({name for pair in perturb_pairs for name in pair})
    lazy_rows = performance_sweep(
        profile, names, profile.updates_small, algorithms=lazy_algorithms
    )
    perturb_rows = performance_sweep(
        profile, names, profile.updates_small, algorithms=perturb_algorithms
    )
    # Fig 7(d): the lazy/eager trade-off as k grows, measured via the generic
    # framework on the first dataset.
    tradeoff_rows: List[Dict[str, object]] = []
    first = names[0]
    graph, stream = dataset_and_stream(profile, first, profile.updates_small)
    for k in (1, 2, 3):
        for lazy in (False, True):
            measurement = run_algorithm(
                "KSwapFramework",
                graph,
                stream,
                dataset=first,
                k=k,
                lazy=lazy,
                time_limit_seconds=profile.time_limit_seconds,
            )
            tradeoff_rows.append(
                {
                    "dataset": first,
                    "k": k,
                    "lazy": lazy,
                    "time_s": round(measurement.elapsed_seconds, 4),
                    "memory": measurement.memory_footprint,
                    "final_size": measurement.final_size,
                }
            )
    return {
        "lazy_time_and_memory": lazy_rows,
        "perturbation_time": perturb_rows,
        "k_tradeoff": tradeoff_rows,
    }


# --------------------------------------------------------------------------- #
# Figure 8: scalability in the number of updates
# --------------------------------------------------------------------------- #
def figure8_update_scalability(
    profile="quick",
    *,
    datasets: Optional[Sequence[str]] = None,
    fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
) -> List[Dict[str, object]]:
    """Fig 8: response time and accuracy as the update count grows."""
    profile = get_profile(profile)
    if datasets is None:
        preferred = [
            name
            for name in ("hollywood", "soc-LiveJournal")
            if name in profile.easy_datasets
        ]
        datasets = preferred or list(profile.easy_datasets[:1])
    rows: List[Dict[str, object]] = []
    for name in datasets:
        graph, stream = dataset_and_stream(profile, name, profile.updates_large)
        for fraction in fractions:
            length = max(1, int(len(stream) * fraction))
            prefix = stream.prefix(length)
            measurements = run_competition(
                graph,
                prefix,
                dataset=name,
                algorithms=PAPER_ALGORITHMS,
                time_limit_seconds=profile.time_limit_seconds,
                reference_node_budget=profile.reference_node_budget,
            )
            for algorithm in PAPER_ALGORITHMS:
                measurement = measurements[algorithm]
                quality = measurement.quality
                rows.append(
                    {
                        "dataset": name,
                        "fraction": fraction,
                        "updates": measurement.num_updates,
                        "algorithm": algorithm,
                        "time_s": round(measurement.elapsed_seconds, 4),
                        "gap": quality.formatted_gap() if quality else None,
                        "accuracy": round(quality.accuracy, 4) if quality else None,
                        "finished": measurement.finished,
                    }
                )
    return rows


def figure8_batched_scalability(
    profile="quick",
    *,
    dataset: Optional[str] = None,
    batch_sizes: Sequence[int] = (1, 16, 64),
    algorithms: Sequence[str] = ("DyOneSwap", "DyTwoSwap"),
) -> List[Dict[str, object]]:
    """Fig 8 companion: per-update cost of the batched engine as batches grow.

    Runs the swap-based maintenance algorithms over the same update stream
    at several ``batch_size`` settings (1 = the classical per-operation
    path) and reports per-update time, the operations cancelled by stream
    coalescing and the final solution size — the batching dimension the
    original figure does not have.
    """
    profile = get_profile(profile)
    name = dataset or profile.easy_datasets[0]
    graph, stream = dataset_and_stream(profile, name, profile.updates_large)
    rows: List[Dict[str, object]] = []
    for algorithm in algorithms:
        for batch_size in batch_sizes:
            measurement = run_algorithm(
                algorithm,
                graph,
                stream,
                dataset=name,
                batch_size=batch_size,
                time_limit_seconds=profile.time_limit_seconds,
            )
            updates = max(1, measurement.num_updates)
            rows.append(
                {
                    "dataset": name,
                    "algorithm": algorithm,
                    "batch_size": batch_size,
                    "updates": measurement.num_updates,
                    "time_s": round(measurement.elapsed_seconds, 4),
                    "per_update_us": round(
                        measurement.elapsed_seconds / updates * 1e6, 3
                    ),
                    "coalesced": int(
                        measurement.extra.get("operations_coalesced", 0)
                    ),
                    "final_size": measurement.final_size,
                    "finished": measurement.finished,
                }
            )
    return rows


# --------------------------------------------------------------------------- #
# Figure 9: effect of the swap depth k
# --------------------------------------------------------------------------- #
def figure9_k_sweep(
    profile="quick",
    *,
    dataset: Optional[str] = None,
    k_values: Sequence[int] = (1, 2, 3, 4),
) -> List[Dict[str, object]]:
    """Fig 9: response time and accuracy of the framework as ``k`` grows."""
    profile = get_profile(profile)
    name = dataset or profile.easy_datasets[0]
    graph, stream = dataset_and_stream(profile, name, profile.updates_small)
    rows: List[Dict[str, object]] = []
    final_graph = graph.copy()
    stream.apply_all(final_graph)
    measurements: List[RunMeasurement] = []
    for k in k_values:
        measurement = run_algorithm(
            "KSwapFramework",
            graph,
            stream,
            dataset=name,
            k=k,
            time_limit_seconds=profile.time_limit_seconds,
        )
        measurements.append(measurement)
    reference = compute_reference(
        final_graph,
        node_budget=profile.reference_node_budget,
        arw_iterations=profile.arw_iterations,
    )
    # With a best-known reference the framework itself may find a larger set;
    # clamp so accuracies stay in (0, 1] as in the paper's exact-α columns.
    reference_size = max(
        [reference.size] + [m.final_size for m in measurements]
    )
    for k, measurement in zip(k_values, measurements):
        accuracy = (
            measurement.final_size / reference_size if reference_size else 1.0
        )
        rows.append(
            {
                "dataset": name,
                "k": k,
                "updates": measurement.num_updates,
                "time_s": round(measurement.elapsed_seconds, 4),
                "final_size": measurement.final_size,
                "reference": reference_size,
                "reference_kind": reference.kind,
                "accuracy": round(accuracy, 4),
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Figure 10: power-law random graphs with varying exponent
# --------------------------------------------------------------------------- #
def figure10_power_law(
    profile="quick",
    *,
    betas: Sequence[float] = (1.9, 2.0, 2.1, 2.2, 2.3, 2.4, 2.5, 2.6, 2.7),
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
) -> List[Dict[str, object]]:
    """Fig 10: gap/accuracy and response time on PLR graphs as β varies."""
    profile = get_profile(profile)
    rows: List[Dict[str, object]] = []
    for beta in betas:
        graph = power_law_random_graph(
            profile.plr_vertices, beta, seed=profile.seed + int(beta * 10)
        )
        stream = mixed_update_stream(
            graph,
            profile.updates_small,
            edge_fraction=0.8,
            seed=profile.seed + int(beta * 100),
        )
        measurements = run_competition(
            graph,
            stream,
            dataset=f"PLR(beta={beta})",
            algorithms=algorithms,
            time_limit_seconds=profile.time_limit_seconds,
            reference_node_budget=profile.reference_node_budget,
        )
        for algorithm in algorithms:
            measurement = measurements[algorithm]
            quality = measurement.quality
            rows.append(
                {
                    "beta": beta,
                    "n": graph.num_vertices,
                    "m": graph.num_edges,
                    "algorithm": algorithm,
                    "time_s": round(measurement.elapsed_seconds, 4),
                    "final_size": measurement.final_size,
                    "gap": quality.formatted_gap() if quality else None,
                    "accuracy": round(quality.accuracy, 4) if quality else None,
                    "finished": measurement.finished,
                }
            )
    return rows


# --------------------------------------------------------------------------- #
# Theory experiments (Theorem 3 witnesses, bound checks)
# --------------------------------------------------------------------------- #
def theorem3_worst_case_table(max_clique_size: int = 7, max_hypercube_dim: int = 4) -> List[Dict[str, object]]:
    """Measured approximation ratios on the Theorem 3 worst-case families."""
    from repro.generators.worst_case import theorem3_witnesses

    rows: List[Dict[str, object]] = []
    for witness in theorem3_witnesses(max_clique_size, max_hypercube_dim):
        graph = witness["graph"]
        rows.append(
            {
                "family": witness["family"],
                "parameter": witness["parameter"],
                "n": graph.num_vertices,
                "m": graph.num_edges,
                "max_degree": witness["max_degree"],
                "k_maximal_size": len(witness["k_maximal_set"]),
                "optimal_size": len(witness["optimal_set"]),
                "measured_ratio": round(witness["ratio"], 4),
                "delta_over_2": round(witness["max_degree"] / 2.0, 4),
            }
        )
    return rows


def theory_bound_check(
    profile="quick", *, datasets: Optional[Sequence[str]] = None
) -> List[Dict[str, object]]:
    """Check Theorem 2 / Theorem 4 bounds for DyOneSwap solutions across datasets."""
    from repro.core.bounds import ratio_report

    profile = get_profile(profile)
    names = list(datasets) if datasets is not None else list(profile.easy_datasets[:3])
    rows: List[Dict[str, object]] = []
    for name in names:
        graph, stream = dataset_and_stream(profile, name, profile.updates_small)
        measurement = run_algorithm("DyOneSwap", graph, stream, dataset=name)
        final_graph = graph.copy()
        stream.apply_all(final_graph)
        reference = compute_reference(
            final_graph,
            node_budget=profile.reference_node_budget,
            arw_iterations=profile.arw_iterations,
        )
        report = ratio_report(final_graph, measurement.final_size, reference.size)
        rows.append(
            {
                "dataset": name,
                "solution_size": report.solution_size,
                "reference": report.reference_size,
                "reference_kind": reference.kind,
                "measured_ratio": round(report.measured_ratio, 4),
                "theorem2_bound": round(report.theorem2_bound, 4),
                "theorem4_bound": (
                    round(report.theorem4_bound, 4)
                    if report.theorem4_bound != float("inf")
                    else None
                ),
                "within_theorem2": report.within_theorem2,
            }
        )
    return rows
