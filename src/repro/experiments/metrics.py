"""Metrics collected by the experiment harness.

The paper evaluates every algorithm along three axes (Section V-A):

* **solution quality** — the *gap* between the maintained independent set and
  a reference size (the independence number from VCSolver on easy graphs, the
  best known result on hard graphs) and the *accuracy* ``|I| / reference``,
* **response time** — wall-clock time to process the update stream,
* **memory usage** — the footprint of the structures each algorithm maintains.

In this reproduction the memory axis is measured with a deterministic
structure-size proxy (:meth:`memory_footprint` on each algorithm) instead of
``/usr/bin/time`` heap samples; see DESIGN.md §3.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class QualityMetrics:
    """Gap and accuracy of a maintained solution against a reference size."""

    solution_size: int
    reference_size: int
    reference_kind: str = "exact"

    @property
    def gap(self) -> int:
        """``reference - |I|`` — negative values mean the solution beat the reference."""
        return self.reference_size - self.solution_size

    @property
    def accuracy(self) -> float:
        """``|I| / reference`` (1.0 when the reference is zero)."""
        if self.reference_size == 0:
            return 1.0
        return self.solution_size / self.reference_size

    @property
    def beats_reference(self) -> bool:
        """True when the maintained solution is larger than the reference (paper's ``↑``)."""
        return self.solution_size > self.reference_size

    def formatted_gap(self) -> str:
        """The paper's gap notation: absolute gap, suffixed with ``↑`` when negative."""
        if self.beats_reference:
            return f"{abs(self.gap)}↑"
        return str(self.gap)


@dataclass
class RunMeasurement:
    """Everything measured for one algorithm on one dataset/stream pair."""

    algorithm: str
    dataset: str
    num_updates: int
    initial_size: int
    final_size: int
    elapsed_seconds: float
    memory_footprint: int
    finished: bool = True
    reference_size: Optional[int] = None
    reference_kind: str = "unknown"
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def quality(self) -> Optional[QualityMetrics]:
        """Quality metrics when a reference size is attached, else ``None``."""
        if self.reference_size is None:
            return None
        return QualityMetrics(
            solution_size=self.final_size,
            reference_size=self.reference_size,
            reference_kind=self.reference_kind,
        )

    @property
    def updates_per_second(self) -> float:
        """Throughput over the update stream (0.0 when nothing was timed)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.num_updates / self.elapsed_seconds

    def as_row(self) -> Dict[str, object]:
        """Flatten the measurement into a table row dictionary."""
        row: Dict[str, object] = {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "updates": self.num_updates,
            "initial_size": self.initial_size,
            "final_size": self.final_size,
            "time_s": round(self.elapsed_seconds, 4),
            "memory": self.memory_footprint,
            "finished": self.finished,
        }
        quality = self.quality
        if quality is not None:
            row["reference"] = self.reference_size
            row["reference_kind"] = self.reference_kind
            row["gap"] = quality.formatted_gap()
            row["accuracy"] = round(quality.accuracy, 4)
        row.update({key: round(value, 4) for key, value in self.extra.items()})
        return row


class Stopwatch:
    """Minimal context-manager stopwatch used by the runner."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: Optional[float] = None

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._start is not None:
            self.elapsed += time.perf_counter() - self._start
            self._start = None

    def peek(self) -> float:
        """Elapsed time so far, including the currently running interval."""
        if self._start is None:
            return self.elapsed
        return self.elapsed + (time.perf_counter() - self._start)


def speedup(baseline_seconds: float, contender_seconds: float) -> float:
    """How many times faster the contender is than the baseline (inf when instant)."""
    if contender_seconds <= 0:
        return float("inf")
    return baseline_seconds / contender_seconds
