"""Experiment runner: algorithms × datasets × update streams.

The runner knows how to

* instantiate every evaluated algorithm by name (the five algorithms of the
  paper plus the generic framework and the optimization variants),
* execute an update stream against an algorithm while timing it and honouring
  an optional per-run time limit (the analogue of the paper's five-hour
  cut-off after which DGOneDIS/DGTwoDIS are reported as "-"),
* compute the reference solution size for a final graph — the exact
  independence number when the branch-and-reduce solver finishes within its
  node budget, and the best known solution otherwise (the paper's Table IV
  convention).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import islice
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.baselines.arw import ArwLocalSearch
from repro.baselines.dgdis import DGOneDIS, DGTwoDIS
from repro.baselines.dyn_arw import DyARW
from repro.baselines.exact import BranchAndReduceSolver
from repro.core.framework import KSwapFramework
from repro.core.one_swap import DyOneSwap
from repro.core.two_swap import DyTwoSwap
from repro.exceptions import ExperimentError, SolverTimeoutError
from repro.experiments.metrics import RunMeasurement, Stopwatch
from repro.graphs.dynamic_graph import DynamicGraph, Vertex
from repro.updates.protocol import (
    StreamCursor,
    stream_description,
    stream_length_hint,
)
from repro.updates.streams import UpdateStream
from repro.workloads.replay import (
    AsyncCheckpointWriter,
    CheckpointConfig,
    latest_valid_checkpoint,
    load_checkpoint,
    save_checkpoint,
)

#: Operations consumed between wall-clock checks when a
#: :class:`~repro.workloads.replay.CheckpointConfig` carries only
#: ``every_seconds`` (scaled by the batch size so chunk boundaries stay
#: batch-aligned).
WALL_CLOCK_STRIDE = 64

#: Residency cap on the chunk a checkpointed run materialises between
#: stopwatch sessions: a huge ``CheckpointConfig.every`` must not turn into
#: an equally huge in-RAM operation list, so chunks are bounded by this
#: (rounded to the batch size) and the checkpoint is written once the
#: operations since the last write reach the interval.
CHECKPOINT_CHUNK = 1024

#: Algorithm names in the order the paper's tables list them.
PAPER_ALGORITHMS: Tuple[str, ...] = (
    "DGOneDIS",
    "DGTwoDIS",
    "DyARW",
    "DyOneSwap",
    "DyTwoSwap",
)


def _make_factory(cls, **fixed):
    def factory(graph: DynamicGraph, initial_solution, **options):
        merged = dict(fixed)
        merged.update(options)
        return cls(graph, initial_solution=initial_solution, **merged)

    return factory


#: Registry mapping algorithm names to factories ``(graph, initial_solution, **options)``.
ALGORITHM_FACTORIES: Dict[str, Callable] = {
    "DGOneDIS": _make_factory(DGOneDIS),
    "DGTwoDIS": _make_factory(DGTwoDIS),
    "DyARW": _make_factory(DyARW),
    "DyOneSwap": _make_factory(DyOneSwap),
    "DyTwoSwap": _make_factory(DyTwoSwap),
    "DyOneSwap+perturb": _make_factory(DyOneSwap, perturbation=True),
    "DyTwoSwap+perturb": _make_factory(DyTwoSwap, perturbation=True),
    "DyOneSwap+lazy": _make_factory(DyOneSwap, lazy=True),
    "DyTwoSwap+lazy": _make_factory(DyTwoSwap, lazy=True),
    "KSwapFramework": _make_factory(KSwapFramework),
}


#: Registry entries whose instances support engine snapshots — every
#: DynamicMISBase maintainer (all of which are deterministic and keep their
#: whole state in graph + membership + counters); the index-based DGDIS
#: baselines are not snapshot-capable.
SNAPSHOT_CAPABLE: Tuple[str, ...] = (
    "DyOneSwap",
    "DyTwoSwap",
    "DyARW",
    "DyOneSwap+perturb",
    "DyTwoSwap+perturb",
    "DyOneSwap+lazy",
    "DyTwoSwap+lazy",
    "KSwapFramework",
)


def supports_snapshots(name: str) -> bool:
    """Whether the registered algorithm ``name`` can be checkpointed.

    Shared by the runner's checkpoint validation and the service layer's
    tenant bootstrap (a tenant without snapshot support could never be
    warm-started or crash-recovered, so it is rejected at configuration
    time).
    """
    return name in SNAPSHOT_CAPABLE


def _supports_snapshots(name: str, options: Dict) -> bool:
    del options  # capability is a property of the registered class
    return supports_snapshots(name)


def release_engine(algorithm) -> None:
    """Deterministically release an engine's external resources.

    A plain algorithm holds nothing beyond Python objects, but a
    :class:`~repro.core.sharded.ShardedEngine` owns worker processes and
    ``/dev/shm`` segments.  Those are finalizer-backed, yet a crashed run's
    exception traceback can keep the engine (and therefore its segments)
    alive for as long as the caller holds the exception — exactly the
    supervised-restart window.  Every path that abandons an engine calls
    this instead of trusting garbage collection.
    """
    close = getattr(algorithm, "close", None)
    if callable(close):
        close()


def available_algorithms() -> Tuple[str, ...]:
    """Names accepted by :func:`run_algorithm`."""
    return tuple(ALGORITHM_FACTORIES)


def create_algorithm(
    name: str,
    graph: DynamicGraph,
    initial_solution: Optional[Iterable[Vertex]] = None,
    **options,
):
    """Instantiate a registered algorithm on ``graph``.

    ``workers=N`` (accepted for every registered algorithm) wraps the
    instance in a :class:`~repro.core.sharded.ShardedEngine`: batches are
    fanned out across ``N`` shard processes over shared-memory membership
    views, with results bit-identical to the unwrapped algorithm.  The
    wrapper delegates its whole observable surface — state, statistics,
    snapshots — so measurements, checkpoints and resumes are
    indistinguishable from single-process runs (``workers`` survives a
    resume because it lives in the run options, not the snapshot payload).
    """
    options = dict(options)
    workers = options.pop("workers", None)
    try:
        factory = ALGORITHM_FACTORIES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown algorithm {name!r}; available: {sorted(ALGORITHM_FACTORIES)}"
        ) from None
    algorithm = factory(graph, initial_solution, **options)
    if workers is not None:
        workers = int(workers)
        if workers < 1:
            raise ExperimentError("workers must be at least 1")
        from repro.core.sharded import ShardedEngine

        algorithm = ShardedEngine(algorithm, workers=workers)
    return algorithm


def _timed_stream_run(
    algorithm,
    stream: Iterable,
    stopwatch: Stopwatch,
    time_limit_seconds: Optional[float],
    check_interval: int,
    batch_size: int = 1,
) -> Tuple[int, bool]:
    """Apply ``stream`` to ``algorithm``; return ``(processed, finished)``.

    With ``batch_size > 1`` and an algorithm exposing ``apply_batch`` (the
    core maintenance algorithms and :class:`~repro.baselines.dyn_arw.DyARW`),
    the stream is fed through the batched update engine — coalescing plus
    one repair pass per batch; algorithms without batch support (the DGDIS
    baselines) silently fall back to per-operation application so batched
    competitions stay runnable across the whole registry.

    The time-limit cutoff is kept off the per-update hot path: without a
    limit the loop carries no bookkeeping at all, and with a limit the
    stopwatch is only consulted once per ``check_interval`` operations
    (stride-wise via ``islice``) instead of evaluating a modulo-and-compare
    on every single update.
    """
    apply_batch = getattr(algorithm, "apply_batch", None)
    if batch_size > 1 and apply_batch is not None:
        iterator = iter(stream)
        processed = 0
        batch = list(islice(iterator, batch_size))
        while batch:
            apply_batch(batch)
            processed += len(batch)
            # Prefetch before consulting the stopwatch so a limit elapsing
            # during the final batch never flags a completed run.
            batch = (
                list(islice(iterator, batch_size))
                if len(batch) == batch_size
                else []
            )
            if (
                batch
                and time_limit_seconds is not None
                and stopwatch.peek() > time_limit_seconds
            ):
                return processed, False
        return processed, True
    apply_update = algorithm.apply_update
    if time_limit_seconds is None:
        processed = 0
        for operation in stream:
            apply_update(operation)
            processed += 1
        return processed, True
    stride = max(1, check_interval)
    iterator = iter(stream)
    processed = 0
    batch = list(islice(iterator, stride))
    while batch:
        for operation in batch:
            apply_update(operation)
        processed += len(batch)
        # Prefetch the next stride so a limit that elapses during the *final*
        # batch never flags a fully completed run as timed out — the
        # stopwatch is only consulted when more work actually remains.
        batch = list(islice(iterator, stride)) if len(batch) == stride else []
        if batch and stopwatch.peek() > time_limit_seconds:
            return processed, False
    return processed, True


@dataclass(frozen=True)
class ReferenceResult:
    """A reference solution size together with its provenance."""

    size: int
    kind: str  # "exact" or "best-known"


def compute_reference(
    graph: DynamicGraph,
    *,
    node_budget: int = 150_000,
    arw_iterations: int = 25,
    known_solutions: Sequence[Set[Vertex]] = (),
    seed: int = 0,
) -> ReferenceResult:
    """Compute the quality reference for a (final) graph.

    Tries the exact branch-and-reduce solver first; if it exceeds its node
    budget, falls back to the best known solution: the largest of an ARW
    local-search run and any solutions supplied by the caller (typically the
    final solutions of the evaluated algorithms).  This mirrors the paper's
    protocol: the independence number from VCSolver on easy graphs, the best
    result of ARW on hard graphs.
    """
    solver = BranchAndReduceSolver(node_budget=node_budget)
    try:
        report = solver.solve(graph)
        return ReferenceResult(size=report.independence_number, kind="exact")
    except SolverTimeoutError:
        pass
    best = 0
    for solution in known_solutions:
        best = max(best, len(solution))
    arw = ArwLocalSearch(max_iterations=arw_iterations, seed=seed).run(graph)
    best = max(best, len(arw.solution))
    return ReferenceResult(size=best, kind="best-known")


def _run_single(
    name: str,
    graph: DynamicGraph,
    stream: Iterable,
    *,
    dataset: str,
    initial_solution: Optional[Iterable[Vertex]],
    time_limit_seconds: Optional[float],
    check_interval: int,
    batch_size: int,
    checkpoint: Optional[CheckpointConfig],
    resume_from: Optional[Union[str, Path]],
    options: Dict,
    guard: Optional[Callable] = None,
    guard_every: Optional[int] = None,
) -> Tuple[RunMeasurement, object]:
    """Crash-safe wrapper around :func:`_run_single_inner`.

    On any exception the engines created by the attempt are released via
    :func:`release_engine` before the exception propagates.  Without this,
    a sharded engine abandoned by a crash stays pinned by the traceback
    frames of the in-flight exception — for a supervised tenant that means
    worker pools and ``/dev/shm`` segments leaking for the whole
    backoff-and-restart window, once per restart.
    """
    created: List[object] = []
    try:
        return _run_single_inner(
            name,
            graph,
            stream,
            dataset=dataset,
            initial_solution=initial_solution,
            time_limit_seconds=time_limit_seconds,
            check_interval=check_interval,
            batch_size=batch_size,
            checkpoint=checkpoint,
            resume_from=resume_from,
            options=options,
            guard=guard,
            guard_every=guard_every,
            _algo_box=created,
        )
    except BaseException:
        for algorithm in created:
            try:
                release_engine(algorithm)
            except Exception:  # pragma: no cover - best-effort cleanup
                pass
        raise


def _run_single_inner(
    name: str,
    graph: DynamicGraph,
    stream: Iterable,
    *,
    dataset: str,
    initial_solution: Optional[Iterable[Vertex]],
    time_limit_seconds: Optional[float],
    check_interval: int,
    batch_size: int,
    checkpoint: Optional[CheckpointConfig],
    resume_from: Optional[Union[str, Path]],
    options: Dict,
    guard: Optional[Callable] = None,
    guard_every: Optional[int] = None,
    _algo_box: Optional[List[object]] = None,
) -> Tuple[RunMeasurement, object]:
    """Shared engine of :func:`run_algorithm` / :func:`run_competition`.

    Returns ``(measurement, algorithm)`` — the caller may need the live
    algorithm for its final graph/solution (the competition's shared
    reference).  The stream is consumed strictly as an iterator (``len()``
    is never called on it; a ``length_hint`` is recorded when the stream
    offers one), so unbounded lazy streams run in O(batch window) memory.
    Handles the optional checkpoint/resume wiring:

    * with ``checkpoint`` set, the stream is consumed through a hashing
      :class:`~repro.updates.protocol.StreamCursor` in chunks and a
      checkpoint recording ``(offset, prefix fingerprint)`` is written after
      every ``checkpoint.every`` operations and/or every
      ``checkpoint.every_seconds`` of wall-clock time (checkpoint I/O and
      fingerprinting are excluded from the measured update time),
    * with ``resume_from`` set, the algorithm is restored bit-for-bit from
      that checkpoint, the first ``processed`` operations of the stream are
      skipped by consuming the iterator, the fingerprint of the skipped
      prefix is verified against the checkpoint's recorded identity, and
      measurement fields (update count, elapsed time, initial size)
      continue from the checkpointed values — so a resumed run is
      indistinguishable from an uninterrupted one.
    """
    stream_length: Optional[int] = stream_length_hint(stream)
    description = stream_description(stream)
    if guard is not None and checkpoint is None:
        # The guard runs at checkpoint-chunk boundaries (outside the
        # stopwatch); without checkpointing there are no such boundaries.
        raise ExperimentError(
            "an invariant guard requires checkpoint=CheckpointConfig(...): "
            "guards run at checkpoint-chunk boundaries"
        )
    if guard_every is not None and guard_every < 1:
        raise ExperimentError("guard_every must be at least 1 when given")
    if checkpoint is not None:
        if not _supports_snapshots(name, options):
            # Fail before any stream work is done — discovering the missing
            # capability at the first save_checkpoint would burn a full
            # chunk of updates first.
            raise ExperimentError(
                f"algorithm {name!r} does not support engine snapshots; "
                f"checkpointing is available for {SNAPSHOT_CAPABLE}"
            )
        if (
            batch_size > 1
            and checkpoint.every is not None
            and checkpoint.every % batch_size
        ):
            raise ExperimentError(
                f"checkpoint interval {checkpoint.every} must be a multiple of "
                f"batch_size {batch_size} so checkpoints land on batch boundaries"
            )
    skip = 0
    elapsed_offset = 0.0
    restored = None
    if resume_from is not None:
        restored = load_checkpoint(resume_from)
        if restored.algorithm_name != name:
            raise ExperimentError(
                f"checkpoint {restored.path} belongs to {restored.algorithm_name!r}, "
                f"not {name!r}"
            )
        if (
            restored.stream_length is not None
            and stream_length is not None
            and restored.stream_length != stream_length
        ):
            raise ExperimentError(
                f"checkpoint {restored.path} was taken on a stream of "
                f"{restored.stream_length} operations; got {stream_length}"
            )
        if (
            restored.stream_description
            and description
            and restored.stream_description != description
        ):
            raise ExperimentError(
                f"checkpoint {restored.path} was taken on stream "
                f"{restored.stream_description!r}; resuming against "
                f"{description!r} would silently mix two runs"
            )
        if restored.dataset and dataset and restored.dataset != dataset:
            raise ExperimentError(
                f"checkpoint {restored.path} was taken on dataset "
                f"{restored.dataset!r}, not {dataset!r}"
            )
        if restored.batch_size != batch_size:
            # Batch boundaries are part of the trajectory: resuming an
            # unbatched checkpoint in batched mode (or vice versa) would
            # shift every coalescing group relative to an uninterrupted run.
            raise ExperimentError(
                f"checkpoint {restored.path} was written by a "
                f"batch_size={restored.batch_size} run; resuming with "
                f"batch_size={batch_size} would shift every batch boundary"
            )
        if stream_length is not None and restored.processed > stream_length:
            raise ExperimentError(
                f"checkpoint {restored.path} consumed {restored.processed} "
                f"operations but the stream only has {stream_length}"
            )

        def factory(restored_graph, solution, **snapshot_options):
            merged = dict(options)
            merged.update(snapshot_options)
            built = create_algorithm(name, restored_graph, solution, **merged)
            if _algo_box is not None:
                # Registered the moment it exists: a restore that fails
                # *after* building the engine must still release it.
                _algo_box.append(built)
            return built

        algorithm = restored.restore(factory)
        skip = restored.processed
        initial_size = restored.initial_size
        elapsed_offset = restored.elapsed_seconds
    else:
        working_graph = graph.copy()
        algorithm = create_algorithm(name, working_graph, initial_solution, **options)
        if _algo_box is not None:
            _algo_box.append(algorithm)
        initial_size = algorithm.solution_size
    # The per-session cutoff accounts for update time already spent before
    # the resume, mirroring the paper's per-run budget.
    session_limit = (
        None if time_limit_seconds is None else time_limit_seconds - elapsed_offset
    )
    stopwatch = Stopwatch()
    # A hashing cursor is only paid for when the run writes checkpoints or
    # fast-forwards a resume; plain runs consume the raw iterator.
    cursor: Optional[StreamCursor] = None
    if checkpoint is not None or skip:
        cursor = StreamCursor(stream)
        iterator: Iterator = cursor
    else:
        iterator = iter(stream)
    if skip:
        assert cursor is not None and restored is not None
        skipped = cursor.skip(skip)
        if skipped < skip:
            raise ExperimentError(
                f"checkpoint {restored.path} consumed {skip} operations but "
                f"the stream only yielded {skipped}"
            )
        if (
            restored.stream_identity is not None
            and cursor.fingerprint != restored.stream_identity
        ):
            raise ExperimentError(
                f"checkpoint {restored.path} was taken at offset {skip} of a "
                f"stream whose prefix fingerprint is "
                f"{restored.stream_identity[:16]}…, but the supplied stream's "
                f"prefix hashes to {cursor.fingerprint[:16]}… — resuming "
                "would silently mix two runs"
            )
        if checkpoint is None:
            # No further fingerprints are needed: hand the raw iterator to
            # the timed loop so hashing never taxes the measured time.
            iterator = cursor.detach()
            cursor = None
    processed = skip
    finished = True
    if session_limit is not None and session_limit <= 0:
        finished = stream_length is not None and processed >= stream_length
    elif checkpoint is None:
        with stopwatch:
            done, finished = _timed_stream_run(
                algorithm,
                iterator,
                stopwatch,
                session_limit,
                check_interval,
                batch_size,
            )
        processed += done
    else:
        assert cursor is not None
        # Chunking: each iteration materialises one bounded chunk (outside
        # the stopwatch) and the checkpoint fires once the operations since
        # the last write reach ``every`` and/or the wall clock passes
        # ``every_seconds``.  The chunk is sized to the *remaining* distance
        # to the next operation-interval checkpoint — so checkpoint offsets
        # land exactly on multiples of ``every`` — but never beyond
        # ``CHECKPOINT_CHUNK`` (residency stays O(chunk), not O(every)) nor,
        # when a wall-clock interval is set, beyond the clock probe stride
        # (a short ``every_seconds`` trips long before a huge ``every``
        # chunk would complete: "whichever trips first").  All candidates
        # are multiples of ``batch_size`` (``every`` is validated above),
        # so chunk boundaries stay batch-aligned.
        clock_stride = (
            WALL_CLOCK_STRIDE * batch_size if batch_size > 1 else WALL_CLOCK_STRIDE
        )
        chunk_cap = (
            max(batch_size, (CHECKPOINT_CHUNK // batch_size) * batch_size)
            if batch_size > 1
            else CHECKPOINT_CHUNK
        )
        # Write-behind: the engine is captured as a cheap copy-on-write fork
        # at the boundary and the serialization + fsync run on the writer's
        # thread, overlapping the next chunk's update work.  The close() in
        # the finally block below is the synchronous flush barrier: by the
        # time this function returns (or unwinds into a crash-recovery
        # path), every checkpoint the loop decided to write is durable.
        writer = AsyncCheckpointWriter() if checkpoint.write_behind else None

        def persist() -> None:
            target = save_checkpoint if writer is None else writer.save
            target(
                algorithm,
                checkpoint,
                algorithm_name=name,
                processed=processed,
                initial_size=initial_size,
                elapsed_seconds=elapsed_offset + stopwatch.elapsed,
                dataset=dataset,
                stream_length=stream_length,
                stream_description=description,
                stream_identity=cursor.fingerprint,
                batch_size=batch_size,
            )

        try:
            pending = 0  # operations applied since the last checkpoint write
            since_guard = 0  # operations applied since the last guard pass
            last_write = time.monotonic()
            while True:
                if checkpoint.every is not None:
                    stride = min(checkpoint.every - pending, chunk_cap)
                    if checkpoint.every_seconds is not None:
                        stride = min(stride, clock_stride)
                else:
                    stride = clock_stride
                chunk = cursor.take(stride)
                if not chunk:
                    break
                with stopwatch:
                    done, chunk_finished = _timed_stream_run(
                        algorithm,
                        chunk,
                        stopwatch,
                        session_limit,
                        check_interval,
                        batch_size,
                    )
                processed += done
                pending += done
                since_guard += done
                if not chunk_finished:
                    finished = False
                    break
                if guard is not None and (
                    guard_every is None or since_guard >= guard_every
                ):
                    # Outside the stopwatch: first-principles verification is
                    # supervision overhead, never measured update time.
                    guard(algorithm)
                    since_guard = 0
                due = (
                    checkpoint.every is not None and pending >= checkpoint.every
                ) or (
                    checkpoint.every_seconds is not None
                    and time.monotonic() - last_write >= checkpoint.every_seconds
                )
                if due:
                    # Checkpoint I/O happens outside the stopwatch: persisting
                    # state must not count as update time.
                    persist()
                    pending = 0
                    last_write = time.monotonic()
                if len(chunk) < stride:
                    break
            if guard is not None and finished and since_guard:
                # End-of-stream guard pass: the final partial interval is
                # verified too, so a violation in the last chunk cannot slip
                # into the returned measurement unchecked.
                guard(algorithm)
            if finished and pending:
                # Wall-clock-only configs still leave a resumable checkpoint
                # at end of stream (operation-interval configs wrote it
                # in-loop).
                persist()
        except BaseException:
            if writer is not None:
                try:
                    writer.close()
                except Exception:  # the in-flight crash takes precedence
                    pass
            raise
        else:
            if writer is not None:
                writer.close()
    measurement = RunMeasurement(
        algorithm=name,
        dataset=dataset,
        num_updates=processed,
        initial_size=initial_size,
        final_size=algorithm.solution_size,
        elapsed_seconds=elapsed_offset + stopwatch.elapsed,
        memory_footprint=algorithm.memory_footprint(),
        finished=finished,
        extra=_algorithm_extras(algorithm),
    )
    return measurement, algorithm


def run_algorithm(
    name: str,
    graph: DynamicGraph,
    stream: Iterable,
    *,
    dataset: str = "",
    initial_solution: Optional[Iterable[Vertex]] = None,
    time_limit_seconds: Optional[float] = None,
    check_interval: int = 64,
    batch_size: int = 1,
    checkpoint: Optional[CheckpointConfig] = None,
    resume_from: Optional[Union[str, Path]] = None,
    guard: Optional[Callable] = None,
    guard_every: Optional[int] = None,
    **options,
) -> RunMeasurement:
    """Run one algorithm over one update stream and measure it.

    The graph is copied, so the same input graph and stream can be reused for
    several algorithms.  Only the stream-processing phase is timed; building
    the initial solution and indexes is excluded, as in the paper.

    Parameters
    ----------
    time_limit_seconds:
        When set, the run is abandoned once this much time has been spent on
        updates; the measurement is returned with ``finished=False`` (the
        paper reports such runs as "-").
    check_interval:
        How often (in updates) the time limit is checked.  The check runs
        once per stride, so the cutoff adds no per-update overhead.
    batch_size:
        When greater than one, feed the stream through the batched update
        engine (coalescing plus one repair pass per batch); algorithms
        without batch support fall back to per-operation application.
    checkpoint:
        When set, write a resumable checkpoint every
        :attr:`~repro.workloads.replay.CheckpointConfig.every` operations
        and/or every
        :attr:`~repro.workloads.replay.CheckpointConfig.every_seconds` of
        wall-clock time (I/O excluded from the measured time).  Each
        checkpoint records the stream offset plus the incremental prefix
        fingerprint, so resumes work on lazy streams that were never
        materialised.  Checkpointing requires a
        :class:`~repro.core.base.DynamicMISBase` algorithm (the core
        maintainers); the index-based baselines are not snapshot-capable.
    resume_from:
        Path of a checkpoint to resume from; the run skips ahead by
        consuming the stream iterator (verifying the prefix fingerprint)
        and its measurement reports cumulative totals, so the result is
        identical to an uninterrupted run (asserted by the test suite).
    guard:
        Optional callable invoked with the live algorithm at
        checkpoint-chunk boundaries, *outside* the measured update time —
        the hook the resilience supervisor's
        :class:`~repro.resilience.supervisor.InvariantGuard` plugs into.
        Requires ``checkpoint``.
    guard_every:
        Run the guard only once at least this many operations have been
        applied since its last pass (default: every chunk boundary).
    """
    measurement, _algorithm = _run_single(
        name,
        graph,
        stream,
        dataset=dataset,
        initial_solution=initial_solution,
        time_limit_seconds=time_limit_seconds,
        check_interval=check_interval,
        batch_size=batch_size,
        checkpoint=checkpoint,
        resume_from=resume_from,
        options=options,
        guard=guard,
        guard_every=guard_every,
    )
    return measurement


def _run_sequential(
    graph: DynamicGraph,
    stream: Iterable,
    *,
    dataset: str,
    algorithms: Sequence[str],
    initial_solution: Optional[Iterable[Vertex]],
    time_limit_seconds: Optional[float],
    check_interval: int,
    batch_size: int,
    algorithm_options: Dict[str, Dict],
    checkpoint: Optional[CheckpointConfig],
    resume: bool,
) -> Tuple[Dict[str, RunMeasurement], List, Optional[DynamicGraph]]:
    """Classic competition: one full (re)play of the stream per algorithm."""
    measurements: Dict[str, RunMeasurement] = {}
    final_solutions = []
    final_graph: Optional[DynamicGraph] = None
    for name in algorithms:
        options = algorithm_options.get(name, {})
        algorithm_checkpoint = checkpoint
        resume_from = None
        if checkpoint is not None:
            if not _supports_snapshots(name, options):
                algorithm_checkpoint = None
            elif resume:
                # Validated discovery: a torn or rotted newest checkpoint is
                # quarantined and the resume falls back to the next older
                # one (or a fresh start) instead of dying on restore.
                resume_from = latest_valid_checkpoint(checkpoint.directory, name)
        measurement, algorithm = _run_single(
            name,
            graph,
            stream,
            dataset=dataset,
            initial_solution=initial_solution,
            time_limit_seconds=time_limit_seconds,
            check_interval=check_interval,
            batch_size=batch_size,
            checkpoint=algorithm_checkpoint,
            resume_from=resume_from,
            options=options,
        )
        measurements[name] = measurement
        if measurement.finished:
            final_solutions.append(algorithm.solution())
            final_graph = algorithm.graph
    return measurements, final_solutions, final_graph


def _run_fanout(
    graph: DynamicGraph,
    stream: Iterable,
    *,
    dataset: str,
    algorithms: Sequence[str],
    initial_solution: Optional[Iterable[Vertex]],
    time_limit_seconds: Optional[float],
    check_interval: int,
    batch_size: int,
    algorithm_options: Dict[str, Dict],
) -> Tuple[Dict[str, RunMeasurement], List, Optional[DynamicGraph]]:
    """One ingest pass fanned out to every algorithm over engine forks.

    The input graph is deep-copied once; each algorithm is constructed over
    a :meth:`~repro.graphs.dynamic_graph.DynamicGraph.fork` of that copy, so
    per-algorithm isolation costs O(slots) spine copies instead of a full
    deep copy each, and the engines diverge at O(touched slots) as they
    mutate.  The stream is consumed through a single iterator in
    batch-aligned chunks (every chunk is a multiple of ``batch_size``, so
    coalescing groups land exactly where a sequential full-stream replay
    would put them) and each chunk is applied to every still-running
    algorithm under its own stopwatch.  A one-shot stream is therefore
    consumed exactly once per competition run — nothing in this function may
    call ``iter(stream)`` a second time.
    """
    base = graph.copy()
    names = list(algorithms)
    engines: Dict[str, object] = {}
    created: List[object] = []
    try:
        for name in names:
            options = algorithm_options.get(name, {})
            engine = create_algorithm(
                name, base.fork(), initial_solution, **options
            )
            created.append(engine)
            engines[name] = engine
        initial_sizes = {name: engines[name].solution_size for name in names}
        stopwatches = {name: Stopwatch() for name in names}
        processed = {name: 0 for name in names}
        running = {name: True for name in names}
        chunk_size = (
            max(batch_size, (CHECKPOINT_CHUNK // batch_size) * batch_size)
            if batch_size > 1
            else CHECKPOINT_CHUNK
        )
        iterator = iter(stream)
        consumed = 0
        while any(running.values()):
            chunk = list(islice(iterator, chunk_size))
            if not chunk:
                break
            consumed += len(chunk)
            for name in names:
                if not running[name]:
                    continue
                stopwatch = stopwatches[name]
                with stopwatch:
                    done, chunk_finished = _timed_stream_run(
                        engines[name],
                        chunk,
                        stopwatch,
                        time_limit_seconds,
                        check_interval,
                        batch_size,
                    )
                processed[name] += done
                if not chunk_finished:
                    running[name] = False
            if len(chunk) < chunk_size:
                break
        # The single pass above is the whole consumption — a second
        # iteration of a one-shot stream would silently hand later work
        # empty chunks, so pin the contract: every algorithm that ran to
        # completion saw exactly the operations of the single pass.
        assert all(
            processed[name] == consumed for name in names if running[name]
        ), "fan-out double-fed or starved an algorithm within the single pass"
        measurements: Dict[str, RunMeasurement] = {}
        final_solutions = []
        final_graph: Optional[DynamicGraph] = None
        for name in names:
            engine = engines[name]
            finished = running[name]
            measurements[name] = RunMeasurement(
                algorithm=name,
                dataset=dataset,
                num_updates=processed[name],
                initial_size=initial_sizes[name],
                final_size=engine.solution_size,
                elapsed_seconds=stopwatches[name].elapsed,
                memory_footprint=engine.memory_footprint(),
                finished=finished,
                extra=_algorithm_extras(engine),
            )
            if finished:
                final_solutions.append(engine.solution())
                final_graph = engine.graph
        return measurements, final_solutions, final_graph
    except BaseException:
        for engine in created:
            try:
                release_engine(engine)
            except Exception:  # pragma: no cover - best-effort cleanup
                pass
        raise


def run_competition(
    graph: DynamicGraph,
    stream: Iterable,
    *,
    dataset: str = "",
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    initial_solution: Optional[Iterable[Vertex]] = None,
    time_limit_seconds: Optional[float] = None,
    check_interval: int = 64,
    batch_size: int = 1,
    reference_node_budget: int = 150_000,
    attach_reference: bool = True,
    algorithm_options: Optional[Dict[str, Dict]] = None,
    checkpoint: Optional[CheckpointConfig] = None,
    resume: bool = False,
) -> Dict[str, RunMeasurement]:
    """Run several algorithms on the same dataset/stream and attach a shared reference.

    Returns a mapping ``algorithm name -> RunMeasurement``.  When
    ``attach_reference`` is true, the reference size of the *final* graph is
    computed once (exact if possible, best-known otherwise, seeded with every
    algorithm's final solution) and attached to each measurement.  With
    ``batch_size > 1`` every batch-capable algorithm processes the stream
    through the batched update engine (the DGDIS baselines fall back to
    per-operation application).

    A replayable stream is replayed once per algorithm (the classic
    sequential protocol).  A **one-shot** stream — a bare iterator, or a
    lazy stream over a non-replayable source — is instead consumed exactly
    once and fanned out to every algorithm through copy-on-write engine
    forks: the input graph is copied once, each algorithm starts on a fork
    of that copy, and every batch-aligned chunk of the single pass is
    applied to all algorithms.  Results are identical to the sequential
    protocol; only checkpoint/resume requires a replayable stream (the
    fan-out has no per-algorithm stream cursor).

    With ``checkpoint`` set, every snapshot-capable algorithm (the
    :class:`~repro.core.base.DynamicMISBase` maintainers) writes resumable
    checkpoints into the shared directory — filenames embed the algorithm
    name, so one directory serves the whole competition; algorithms without
    snapshot support run straight through.  With ``resume=True`` each
    algorithm restarts from its newest checkpoint in that directory (fresh
    when it has none), which makes an interrupted competition restartable
    with the completed prefix priced in.
    """
    algorithm_options = algorithm_options or {}
    replayable = getattr(stream, "replayable", None)
    one_shot = iter(stream) is stream or (
        callable(replayable) and not replayable()
    )
    if resume and checkpoint is None:
        raise ExperimentError(
            "resume=True requires checkpoint=CheckpointConfig(...): without a "
            "checkpoint directory there is nothing to resume from"
        )
    if one_shot and len(algorithms) > 1:
        # A one-shot stream cannot be replayed once per algorithm, so the
        # competition takes the fork fan-out path instead: the input graph
        # is copied once, every algorithm starts on a cheap copy-on-write
        # fork of that copy, and the single pass over the stream feeds each
        # chunk to all algorithms — results are identical to sequential
        # replays of a replayable stream (regression-pinned).
        if checkpoint is not None:
            raise ExperimentError(
                "run_competition cannot checkpoint a one-shot stream: the "
                "fork fan-out consumes the stream once for all algorithms "
                "with no per-algorithm cursor — pass a replayable stream "
                "to use checkpoint/resume"
            )
        measurements, final_solutions, final_graph = _run_fanout(
            graph,
            stream,
            dataset=dataset,
            algorithms=algorithms,
            initial_solution=initial_solution,
            time_limit_seconds=time_limit_seconds,
            check_interval=check_interval,
            batch_size=batch_size,
            algorithm_options=algorithm_options,
        )
    else:
        measurements, final_solutions, final_graph = _run_sequential(
            graph,
            stream,
            dataset=dataset,
            algorithms=algorithms,
            initial_solution=initial_solution,
            time_limit_seconds=time_limit_seconds,
            check_interval=check_interval,
            batch_size=batch_size,
            algorithm_options=algorithm_options,
            checkpoint=checkpoint,
            resume=resume,
        )
    if attach_reference and final_graph is not None:
        reference = compute_reference(
            final_graph,
            node_budget=reference_node_budget,
            known_solutions=final_solutions,
        )
        for measurement in measurements.values():
            if measurement.finished:
                measurement.reference_size = reference.size
                measurement.reference_kind = reference.kind
    return measurements


def apply_stream_to_graph(graph: DynamicGraph, stream: UpdateStream) -> DynamicGraph:
    """Return a copy of ``graph`` with every operation of ``stream`` applied."""
    final_graph = graph.copy()
    stream.apply_all(final_graph)
    return final_graph


def _algorithm_extras(algorithm) -> Dict[str, float]:
    """Pull algorithm-specific statistics into the measurement's extra fields."""
    extra: Dict[str, float] = {}
    stats = getattr(algorithm, "stats", None)
    if stats is None:
        return extra
    swaps = getattr(stats, "swaps_performed", None)
    if swaps is not None:
        extra["swaps"] = float(sum(swaps.values()))
    perturbations = getattr(stats, "perturbations", None)
    if perturbations is not None:
        extra["perturbations"] = float(perturbations)
    scanned = getattr(stats, "index_entries_scanned", None)
    if scanned is not None:
        extra["index_scans"] = float(scanned)
    coalesced = getattr(stats, "operations_coalesced", None)
    if coalesced:
        extra["operations_coalesced"] = float(coalesced)
    batches = getattr(stats, "batches_applied", None)
    if batches:
        extra["batches_applied"] = float(batches)
    return extra


def elapsed_time_of(callable_, *args, **kwargs) -> Tuple[float, object]:
    """Utility: run a callable and return ``(elapsed_seconds, result)``."""
    start = time.perf_counter()
    result = callable_(*args, **kwargs)
    return time.perf_counter() - start, result
