"""Experiment profiles and dataset selection.

The paper's evaluation uses 22 graphs with up to billions of edges and update
streams of 100 000 and 1 000 000 operations.  The reproduction scales both
down while preserving the ratios that drive the qualitative behaviour:

* stand-in graphs keep the original average degree and a power-law degree
  distribution (see :mod:`repro.generators.datasets`),
* the "small" update stream is roughly ``1.3 × n`` operations — the same
  updates-per-vertex ratio as 100 000 updates on Epinions — and the "large"
  stream is several times that, reproducing the highly-dynamic regime where
  the paper's algorithms shine.

Three profiles are provided: ``quick`` (used by the pytest benchmarks so the
whole suite stays fast), ``standard`` (a fuller sweep over more datasets) and
``full`` (every dataset of Table I at the registry's default scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.exceptions import ExperimentError
from repro.generators.datasets import dataset_names, load_dataset
from repro.graphs.dynamic_graph import DynamicGraph
from repro.updates.streams import UpdateStream, mixed_update_stream
from repro.workloads.temporal import (
    TemporalUpdateStream,
    synthetic_temporal_events,
    temporal_update_stream,
)


@dataclass(frozen=True)
class ExperimentProfile:
    """Sizing knobs shared by every table/figure reproduction.

    Attributes
    ----------
    easy_vertices, hard_vertices:
        Stand-in sizes for easy/hard datasets.
    updates_small, updates_large:
        Stream lengths corresponding to the paper's 100 000 and 1 000 000
        update experiments.
    easy_datasets, hard_datasets:
        Which named datasets are included.
    reference_node_budget:
        Node budget handed to the exact solver when computing references.
    arw_iterations:
        Iterations of the ARW fallback reference.
    time_limit_seconds:
        Per-run cut-off (the five-hour analogue); ``None`` disables it.
    plr_vertices:
        Size of the Fig 10 power-law random graphs.
    seed:
        Base seed for streams and generators.
    """

    name: str
    easy_vertices: int
    hard_vertices: int
    updates_small: int
    updates_large: int
    easy_datasets: Tuple[str, ...]
    hard_datasets: Tuple[str, ...]
    reference_node_budget: int = 60_000
    arw_iterations: int = 10
    time_limit_seconds: Optional[float] = None
    plr_vertices: int = 1_000
    seed: int = 2022


QUICK_PROFILE = ExperimentProfile(
    name="quick",
    easy_vertices=500,
    hard_vertices=600,
    updates_small=700,
    updates_large=2_100,
    easy_datasets=("Epinions", "Email", "com-dblp", "web-BerkStan", "hollywood"),
    hard_datasets=("soc-pokec", "cit-Patents", "com-orkut"),
    reference_node_budget=15_000,
    arw_iterations=4,
    time_limit_seconds=60.0,
    plr_vertices=600,
)

STANDARD_PROFILE = ExperimentProfile(
    name="standard",
    easy_vertices=1_200,
    hard_vertices=1_500,
    updates_small=1_600,
    updates_large=6_000,
    easy_datasets=tuple(dataset_names("easy")),
    hard_datasets=tuple(dataset_names("hard")),
    reference_node_budget=80_000,
    arw_iterations=10,
    time_limit_seconds=300.0,
    plr_vertices=2_000,
)

FULL_PROFILE = ExperimentProfile(
    name="full",
    easy_vertices=3_000,
    hard_vertices=4_000,
    updates_small=4_000,
    updates_large=16_000,
    easy_datasets=tuple(dataset_names("easy")),
    hard_datasets=tuple(dataset_names("hard")),
    reference_node_budget=300_000,
    arw_iterations=25,
    time_limit_seconds=1_800.0,
    plr_vertices=10_000,
)

_PROFILES: Dict[str, ExperimentProfile] = {
    profile.name: profile
    for profile in (QUICK_PROFILE, STANDARD_PROFILE, FULL_PROFILE)
}


def get_profile(name_or_profile) -> ExperimentProfile:
    """Resolve a profile by name, or pass an :class:`ExperimentProfile` through."""
    if isinstance(name_or_profile, ExperimentProfile):
        return name_or_profile
    try:
        return _PROFILES[name_or_profile]
    except KeyError:
        raise ExperimentError(
            f"unknown profile {name_or_profile!r}; known: {sorted(_PROFILES)}"
        ) from None


def profile_names() -> Tuple[str, ...]:
    """Names of the built-in profiles."""
    return tuple(_PROFILES)


def load_profile_dataset(profile: ExperimentProfile, name: str) -> DynamicGraph:
    """Load the stand-in for ``name`` at the size the profile prescribes."""
    if name in profile.hard_datasets:
        size = profile.hard_vertices
    else:
        size = profile.easy_vertices
    return load_dataset(name, scaled_vertices=size)


def build_update_stream(
    profile: ExperimentProfile,
    graph: DynamicGraph,
    num_updates: int,
    *,
    dataset: str = "",
) -> UpdateStream:
    """Build the paper's default workload (random mixed updates) for a dataset."""
    seed = profile.seed + sum(ord(c) for c in dataset)
    return mixed_update_stream(
        graph,
        num_updates,
        edge_fraction=0.8,
        insert_ratio=0.5,
        seed=seed,
    )


def dataset_and_stream(
    profile: ExperimentProfile, name: str, num_updates: int
) -> Tuple[DynamicGraph, UpdateStream]:
    """Convenience: load a dataset stand-in plus its update stream."""
    graph = load_profile_dataset(profile, name)
    stream = build_update_stream(profile, graph, num_updates, dataset=name)
    return graph, stream


# --------------------------------------------------------------------- #
# Temporal workload catalog
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class TemporalWorkloadSpec:
    """A named temporal replay workload (stand-in for a SNAP temporal dataset).

    The real temporal datasets (wiki-Talk, email-Eu, sx-stackoverflow, …)
    are not redistributable inside this repository, so each catalog entry
    generates a deterministic hub-biased interaction sequence at the
    profile's scale (:func:`repro.workloads.temporal.synthetic_temporal_events`)
    and replays it through the named retention policy
    (:func:`repro.workloads.temporal.temporal_update_stream`).

    Attributes
    ----------
    name:
        Catalog key.
    events_factor:
        Timestamped interactions generated per profile "small" update
        (deletions synthesized by the policy come on top, so the resulting
        stream is longer than the event count).
    window:
        Time-window retention in timestamp units (``None`` disables it).
    max_live:
        Capacity decay: at most this many live interactions (``None``
        disables it).
    gc_isolated:
        Delete endpoints isolated by expiries (vertex churn, exercising the
        engine's slot recycling).
    hub_fraction, hub_bias:
        Skew knobs of the synthetic event generator.
    description:
        The real-world scenario the workload models.
    """

    name: str
    events_factor: float = 1.0
    window: Optional[float] = None
    max_live: Optional[int] = None
    gc_isolated: bool = True
    hub_fraction: float = 0.05
    hub_bias: float = 0.6
    description: str = ""


TEMPORAL_WORKLOADS: Dict[str, TemporalWorkloadSpec] = {
    spec.name: spec
    for spec in (
        TemporalWorkloadSpec(
            name="wiki-talk-window",
            events_factor=1.0,
            window=40.0,
            description="message-graph replay where interactions expire after a time window",
        ),
        TemporalWorkloadSpec(
            name="email-eu-decay",
            events_factor=1.0,
            max_live=400,
            hub_bias=0.7,
            description="mail traffic with a bounded live set (capacity decay, oldest first)",
        ),
        TemporalWorkloadSpec(
            name="stackoverflow-burst",
            events_factor=1.0,
            window=15.0,
            hub_fraction=0.02,
            hub_bias=0.8,
            description="hot-question bursts: short window, heavy hub skew, fast churn",
        ),
        TemporalWorkloadSpec(
            name="citation-growth",
            events_factor=1.0,
            window=None,
            max_live=None,
            gc_isolated=False,
            hub_bias=0.4,
            description="append-only citation growth (no deletions; the graph only accretes)",
        ),
    )
}


def temporal_workload_names() -> Tuple[str, ...]:
    """Names accepted by :func:`load_temporal_workload`."""
    return tuple(TEMPORAL_WORKLOADS)


def load_temporal_workload(
    profile, name: str, *, num_events: Optional[int] = None
) -> Tuple[DynamicGraph, TemporalUpdateStream]:
    """Build a catalog temporal workload at the profile's scale.

    Returns ``(initial graph, stream)`` ready for
    :func:`~repro.experiments.runner.run_algorithm` /
    :func:`~repro.experiments.runner.run_competition`: the initial graph is
    empty (a temporal replay builds its graph from the stream) and the
    stream replays ``num_events`` timestamped interactions (default: the
    profile's small update count times the spec's ``events_factor``) through
    the spec's retention policy.
    """
    profile = get_profile(profile)
    try:
        spec = TEMPORAL_WORKLOADS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown temporal workload {name!r}; known: {sorted(TEMPORAL_WORKLOADS)}"
        ) from None
    if num_events is None:
        num_events = max(1, int(profile.updates_small * spec.events_factor))
    seed = profile.seed + sum(ord(c) for c in name)
    events = synthetic_temporal_events(
        num_events,
        num_vertices=profile.easy_vertices,
        seed=seed,
        hub_fraction=spec.hub_fraction,
        hub_bias=spec.hub_bias,
    )
    stream = temporal_update_stream(
        events,
        window=spec.window,
        max_live=spec.max_live,
        gc_isolated=spec.gc_isolated,
        description=name,
        # Passed at construction: poking stream.metadata afterwards would
        # force an eager summary pass over the lazy stream.
        extra_metadata={"workload": name, "profile": profile.name},
    )
    return DynamicGraph(), stream
