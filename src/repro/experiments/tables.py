"""Reproduction of the paper's tables (I–IV).

Every function returns a list of plain row dictionaries (one row per dataset,
algorithm results flattened into columns) so callers can render them with
:func:`repro.experiments.reporting.format_table`, assert on them in tests, or
dump them to CSV.  The benchmarks in ``benchmarks/`` call these functions with
the ``quick`` profile.

Mapping to the paper:

* :func:`table1_dataset_statistics` — Table I (dataset statistics, original
  versus synthetic stand-in),
* :func:`table2_easy_quality` — Table II (gap & accuracy on easy graphs after
  the "100k updates" analogue),
* :func:`table3_many_updates` — Table III (gap & accuracy on the last seven
  easy graphs after the "1M updates" analogue),
* :func:`table4_hard_quality` — Table IV (gap to the ARW best result on hard
  graphs after the "1M updates" analogue).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.baselines.arw import ArwLocalSearch
from repro.baselines.exact import BranchAndReduceSolver
from repro.exceptions import SolverTimeoutError
from repro.experiments.datasets import (
    ExperimentProfile,
    dataset_and_stream,
    get_profile,
    load_profile_dataset,
)
from repro.experiments.metrics import QualityMetrics, RunMeasurement
from repro.experiments.runner import PAPER_ALGORITHMS, run_competition
from repro.generators.datasets import LAST_SEVEN_EASY, get_dataset_spec
from repro.graphs.dynamic_graph import DynamicGraph, Vertex

#: The perturbation variants whose gap is reported in the paper's ``gap*`` columns.
PERTURBATION_VARIANTS: Tuple[str, ...] = ("DyOneSwap+perturb", "DyTwoSwap+perturb")


# --------------------------------------------------------------------------- #
# Table I
# --------------------------------------------------------------------------- #
def table1_dataset_statistics(
    profile="quick", *, datasets: Optional[Sequence[str]] = None
) -> List[Dict[str, object]]:
    """Table I: statistics of the original graphs and their synthetic stand-ins."""
    profile = get_profile(profile)
    names = list(datasets) if datasets is not None else list(
        profile.easy_datasets + profile.hard_datasets
    )
    rows: List[Dict[str, object]] = []
    for name in names:
        spec = get_dataset_spec(name)
        graph = load_profile_dataset(profile, name)
        rows.append(
            {
                "dataset": spec.name,
                "category": spec.category,
                "paper_n": spec.paper_vertices,
                "paper_m": spec.paper_edges,
                "paper_avg_degree": spec.paper_average_degree,
                "repro_n": graph.num_vertices,
                "repro_m": graph.num_edges,
                "repro_avg_degree": round(graph.average_degree(), 2),
                "scale_factor": round(spec.paper_vertices / graph.num_vertices, 1),
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Tables II and III (gap & accuracy against the independence number)
# --------------------------------------------------------------------------- #
def table2_easy_quality(
    profile="quick", *, datasets: Optional[Sequence[str]] = None
) -> List[Dict[str, object]]:
    """Table II: gap and accuracy on easy graphs after the small update stream."""
    profile = get_profile(profile)
    names = list(datasets) if datasets is not None else list(profile.easy_datasets)
    return _quality_table(profile, names, profile.updates_small, initial_kind="exact")

def table3_many_updates(
    profile="quick",
    *,
    datasets: Optional[Sequence[str]] = None,
    batch_size: int = 1,
) -> List[Dict[str, object]]:
    """Table III: gap and accuracy on the last seven easy graphs after the large stream.

    ``batch_size > 1`` reruns the table through the batched update engine
    (one coalesce + repair pass per batch); quality columns are then the
    batch-boundary solutions, which carry the same k-maximality guarantee.
    """
    profile = get_profile(profile)
    if datasets is not None:
        names = list(datasets)
    else:
        names = [name for name in profile.easy_datasets if name in LAST_SEVEN_EASY]
        if not names:
            names = list(profile.easy_datasets)
    return _quality_table(
        profile,
        names,
        profile.updates_large,
        initial_kind="exact",
        batch_size=batch_size,
    )


def _quality_table(
    profile: ExperimentProfile,
    names: Sequence[str],
    num_updates: int,
    *,
    initial_kind: str,
    batch_size: int = 1,
) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    algorithms = list(PAPER_ALGORITHMS) + list(PERTURBATION_VARIANTS)
    for name in names:
        graph, stream = dataset_and_stream(profile, name, num_updates)
        initial_solution, initial_source = compute_initial_solution(
            graph,
            prefer=initial_kind,
            node_budget=profile.reference_node_budget,
            arw_iterations=profile.arw_iterations,
            seed=profile.seed,
        )
        measurements = run_competition(
            graph,
            stream,
            dataset=name,
            algorithms=algorithms,
            initial_solution=initial_solution,
            time_limit_seconds=profile.time_limit_seconds,
            batch_size=batch_size,
            reference_node_budget=profile.reference_node_budget,
        )
        rows.append(
            _quality_row(
                name,
                num_updates,
                measurements,
                initial_source=initial_source,
            )
        )
    return rows


def _quality_row(
    dataset: str,
    num_updates: int,
    measurements: Dict[str, RunMeasurement],
    *,
    initial_source: str,
) -> Dict[str, object]:
    reference = None
    reference_kind = "unknown"
    for measurement in measurements.values():
        if measurement.reference_size is not None:
            reference = measurement.reference_size
            reference_kind = measurement.reference_kind
            break
    row: Dict[str, object] = {
        "dataset": dataset,
        "updates": num_updates,
        "reference": reference,
        "reference_kind": reference_kind,
        "initial_solution": initial_source,
    }
    for name in PAPER_ALGORITHMS:
        measurement = measurements.get(name)
        if measurement is None or not measurement.finished:
            row[f"{name}_gap"] = None
            row[f"{name}_acc"] = None
            continue
        quality = measurement.quality
        row[f"{name}_gap"] = quality.formatted_gap() if quality else None
        row[f"{name}_acc"] = round(quality.accuracy, 4) if quality else None
    for variant in PERTURBATION_VARIANTS:
        measurement = measurements.get(variant)
        base = variant.split("+", 1)[0]
        if measurement is None or not measurement.finished or measurement.quality is None:
            row[f"{base}_gap*"] = None
        else:
            row[f"{base}_gap*"] = measurement.quality.formatted_gap()
    return row


# --------------------------------------------------------------------------- #
# Table IV (gap to the ARW best result on hard graphs)
# --------------------------------------------------------------------------- #
def table4_hard_quality(
    profile="quick", *, datasets: Optional[Sequence[str]] = None
) -> List[Dict[str, object]]:
    """Table IV: gap to the best ARW result on hard graphs after the large stream.

    DGOneDIS / DGTwoDIS rows show ``None`` (rendered as "-") when they do not
    finish within the profile's time limit, mirroring the paper.
    """
    profile = get_profile(profile)
    names = list(datasets) if datasets is not None else list(profile.hard_datasets)
    algorithms = list(PAPER_ALGORITHMS) + list(PERTURBATION_VARIANTS)
    rows: List[Dict[str, object]] = []
    for name in names:
        graph, stream = dataset_and_stream(profile, name, profile.updates_large)
        initial_solution, initial_source = compute_initial_solution(
            graph,
            prefer="arw",
            node_budget=profile.reference_node_budget,
            arw_iterations=profile.arw_iterations,
            seed=profile.seed,
        )
        measurements = run_competition(
            graph,
            stream,
            dataset=name,
            algorithms=algorithms,
            initial_solution=initial_solution,
            time_limit_seconds=profile.time_limit_seconds,
            attach_reference=False,
        )
        # The reference is ARW's best result on the *final* graph.
        final_graph = graph.copy()
        stream.apply_all(final_graph)
        best_result = ArwLocalSearch(
            max_iterations=profile.arw_iterations, seed=profile.seed
        ).run(final_graph, initial_solution=None)
        reference = len(best_result.solution)
        row: Dict[str, object] = {
            "dataset": name,
            "updates": profile.updates_large,
            "best_result": reference,
            "initial_solution": initial_source,
        }
        for algorithm in PAPER_ALGORITHMS:
            measurement = measurements.get(algorithm)
            if measurement is None or not measurement.finished:
                row[f"{algorithm}_gap"] = None
                continue
            quality = QualityMetrics(
                solution_size=measurement.final_size,
                reference_size=reference,
                reference_kind="best-known",
            )
            row[f"{algorithm}_gap"] = quality.formatted_gap()
        for variant in PERTURBATION_VARIANTS:
            measurement = measurements.get(variant)
            base = variant.split("+", 1)[0]
            if measurement is None or not measurement.finished:
                row[f"{base}_gap*"] = None
            else:
                quality = QualityMetrics(
                    solution_size=measurement.final_size,
                    reference_size=reference,
                    reference_kind="best-known",
                )
                row[f"{base}_gap*"] = quality.formatted_gap()
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Initial solutions
# --------------------------------------------------------------------------- #
def compute_initial_solution(
    graph: DynamicGraph,
    *,
    prefer: str = "exact",
    node_budget: int = 60_000,
    arw_iterations: int = 10,
    seed: int = 0,
) -> Tuple[Set[Vertex], str]:
    """Compute the initial independent set handed to every algorithm.

    Mirrors the paper's protocol: a maximum independent set (VCSolver) for
    easy graphs, a strong ARW local-search solution for hard graphs.  When
    ``prefer="exact"`` but the solver exceeds its budget, the ARW solution is
    used instead (and the provenance string says so).
    """
    if prefer == "exact":
        solver = BranchAndReduceSolver(node_budget=node_budget)
        try:
            report = solver.solve(graph)
            return set(report.solution), "exact"
        except SolverTimeoutError:
            pass
    result = ArwLocalSearch(max_iterations=arw_iterations, seed=seed).run(graph)
    return set(result.solution), "arw"


def pivot_quality_rows(
    rows: Iterable[Dict[str, object]], metric: str = "acc"
) -> List[Dict[str, object]]:
    """Re-shape dataset-level rows into (dataset, algorithm, value) triples.

    Useful for plotting or for the summary statistics in EXPERIMENTS.md.
    """
    result: List[Dict[str, object]] = []
    for row in rows:
        for algorithm in PAPER_ALGORITHMS:
            key = f"{algorithm}_{metric}"
            if key in row and row[key] is not None:
                result.append(
                    {
                        "dataset": row["dataset"],
                        "algorithm": algorithm,
                        metric: row[key],
                    }
                )
    return result
