"""Plain-text rendering of experiment results.

Every table/figure function in :mod:`repro.experiments.tables` and
:mod:`repro.experiments.figures` returns plain data (lists of dictionaries or
series); this module turns them into aligned text tables so the benchmark
harness can print output directly comparable with the paper's tables.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    float_precision: int = 4,
) -> str:
    """Render a list of row dictionaries as an aligned text table.

    Parameters
    ----------
    rows:
        The data.  Missing cells are rendered as ``-``.
    columns:
        Column order; defaults to the union of keys in first-seen order.
    title:
        Optional title printed above the table.
    float_precision:
        Number of decimal places used for floats.
    """
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered_rows.append([_render_cell(row.get(col), float_precision) for col in columns])
    widths = [len(str(col)) for col in columns]
    for rendered in rendered_rows:
        for index, cell in enumerate(rendered):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    for rendered in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(rendered)))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[float]],
    *,
    x_label: str = "x",
    x_values: Optional[Sequence[object]] = None,
    title: Optional[str] = None,
    float_precision: int = 4,
) -> str:
    """Render a figure-style result (one numeric series per algorithm) as a table.

    ``series`` maps a series name (e.g. an algorithm) to its y-values;
    ``x_values`` supplies the shared x-axis.
    """
    length = max((len(values) for values in series.values()), default=0)
    if x_values is None:
        x_values = list(range(length))
    rows = []
    for index, x in enumerate(x_values):
        row: Dict[str, object] = {x_label: x}
        for name, values in series.items():
            row[name] = values[index] if index < len(values) else None
        rows.append(row)
    return format_table(rows, title=title, float_precision=float_precision)


def summarize_comparison(
    rows: Sequence[Mapping[str, object]],
    *,
    group_key: str = "dataset",
    value_key: str = "accuracy",
    algorithm_key: str = "algorithm",
) -> Dict[str, str]:
    """Return, per group, the algorithm with the best value (used in EXPERIMENTS.md)."""
    best: Dict[str, tuple] = {}
    for row in rows:
        group = str(row.get(group_key))
        value = row.get(value_key)
        if value is None:
            continue
        current = best.get(group)
        if current is None or value > current[0]:
            best[group] = (value, str(row.get(algorithm_key)))
    return {group: name for group, (_value, name) in best.items()}


def _render_cell(value: object, float_precision: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{float_precision}f}"
    return str(value)


def rows_to_csv(rows: Sequence[Mapping[str, object]], *, columns: Optional[Iterable[str]] = None) -> str:
    """Render rows as a small CSV string (used when persisting results)."""
    if columns is None:
        seen: List[str] = []
        for row in rows:
            for key in row:
                if key not in seen:
                    seen.append(key)
        columns = seen
    columns = list(columns)
    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(_csv_cell(row.get(col)) for col in columns))
    return "\n".join(lines)


def _csv_cell(value: object) -> str:
    if value is None:
        return ""
    text = str(value)
    if "," in text or '"' in text:
        return '"' + text.replace('"', '""') + '"'
    return text
