"""Download-with-checksum helpers for real SNAP temporal datasets.

The workload catalog (:mod:`repro.experiments.datasets`) ships deterministic
*synthetic* stand-ins because the SNAP temporal datasets are not
redistributable inside this repository.  This module points the ingestion
layer at the real thing:

* :data:`SNAP_TEMPORAL_DATASETS` names the small/medium SNAP temporal graphs
  whose ``u v t`` format :mod:`repro.workloads.temporal` parses directly
  (gzip-transparent — the downloads stay compressed on disk),
* :func:`fetch_dataset` downloads one with SHA-256 verification.  Integrity
  pinning is two-level: a caller-supplied (or registry) digest is enforced
  when present, and the digest observed on first download is recorded in a
  ``<file>.sha256`` sidecar so later reads detect on-disk corruption even
  for unpinned datasets.  Downloads are **retrying and resumable**
  (:func:`fetch_file`): the payload accumulates in a ``<file>.part``
  sibling, transient failures back off exponentially and resume with an
  HTTP ``Range`` request from the bytes already fetched, zero-byte and
  truncated transfers are hard failures, and a checksum mismatch deletes
  the partial file instead of leaving a poisoned cache entry,
* :func:`snap_temporal_stream` turns a downloaded file into a lazy, cached
  update stream (:func:`~repro.workloads.temporal.cached_temporal_stream`).

Everything is **offline-safe**: with ``download=False`` (the default) a
missing file never touches the network — :func:`fetch_dataset` returns
``None`` and :func:`snap_temporal_stream` raises
:class:`~repro.exceptions.DatasetError` with a clear message saying which
file to fetch and how.  CI and the test-suite therefore run without network
access; the real datasets light up the moment the operator drops the files
in (or opts into downloading).
"""

from __future__ import annotations

import hashlib
import os
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

from repro.exceptions import DatasetError, InjectedFault
from repro.resilience.faults import FETCH, trip

PathLike = Union[str, Path]

#: Default directory for downloaded datasets (overridable per call and via
#: the ``REPRO_DATASET_DIR`` environment variable).
DEFAULT_DATASET_DIR = Path("datasets/snap")


@dataclass(frozen=True)
class SnapDataset:
    """One downloadable SNAP temporal dataset.

    ``sha256`` pins the exact upstream file when known; ``None`` means
    "trust on first download" (the observed digest is recorded in a sidecar
    and enforced from then on).  ``approx_events`` is documentation — it
    sizes expectations, nothing validates it.
    """

    name: str
    url: str
    filename: str
    sha256: Optional[str] = None
    approx_events: int = 0
    description: str = ""


#: SNAP temporal graphs in the exact ``u v t`` format the temporal parser
#: reads (directed multigraph dumps; the windowing layer canonicalises and
#: deduplicates interactions).  Ordered smallest first.
SNAP_TEMPORAL_DATASETS: Dict[str, SnapDataset] = {
    dataset.name: dataset
    for dataset in (
        SnapDataset(
            name="CollegeMsg",
            url="https://snap.stanford.edu/data/CollegeMsg.txt.gz",
            filename="CollegeMsg.txt.gz",
            approx_events=59_835,
            description="private messages on a UC-Irvine social network",
        ),
        SnapDataset(
            name="email-Eu-core-temporal",
            url="https://snap.stanford.edu/data/email-Eu-core-temporal.txt.gz",
            filename="email-Eu-core-temporal.txt.gz",
            approx_events=332_334,
            description="internal mail of a European research institution",
        ),
        SnapDataset(
            name="sx-mathoverflow",
            url="https://snap.stanford.edu/data/sx-mathoverflow.txt.gz",
            filename="sx-mathoverflow.txt.gz",
            approx_events=506_550,
            description="MathOverflow comments/answers interactions",
        ),
    )
}


def dataset_dir(directory: Optional[PathLike] = None) -> Path:
    """Resolve the dataset directory (arg > ``$REPRO_DATASET_DIR`` > default)."""
    if directory is not None:
        return Path(directory)
    env = os.environ.get("REPRO_DATASET_DIR")
    return Path(env) if env else DEFAULT_DATASET_DIR


def sha256_of(path: PathLike, *, chunk_size: int = 1 << 20) -> str:
    """SHA-256 of a file, streamed in ``chunk_size`` blocks."""
    digest = hashlib.sha256()
    with Path(path).open("rb") as handle:
        while True:
            block = handle.read(chunk_size)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()


def _sidecar(path: Path) -> Path:
    return path.with_name(path.name + ".sha256")


def verify_checksum(path: PathLike, expected: Optional[str] = None) -> str:
    """Verify ``path`` against ``expected`` and/or its recorded sidecar digest.

    Returns the file's digest.  Raises :class:`~repro.exceptions.DatasetError`
    on any mismatch; records the digest in the sidecar when none exists yet
    (trust-on-first-use for unpinned datasets).
    """
    path = Path(path)
    digest = sha256_of(path)
    if expected is not None and digest != expected:
        raise DatasetError(
            f"{path}: SHA-256 mismatch — expected {expected}, got {digest}; "
            "the download is corrupt or the upstream file changed "
            "(delete the file to re-fetch)"
        )
    sidecar = _sidecar(path)
    if sidecar.exists():
        recorded = sidecar.read_text(encoding="utf-8").strip()
        if recorded and digest != recorded:
            raise DatasetError(
                f"{path}: SHA-256 mismatch vs the digest recorded at download "
                f"time ({sidecar.name}) — expected {recorded}, got {digest}; "
                "the file was modified or corrupted on disk"
            )
    else:
        sidecar.write_text(digest + "\n", encoding="utf-8")
    return digest


def _partial_path(dest: Path) -> Path:
    return dest.with_name(dest.name + ".part")


def _transfer_once(
    url: str, part: Path, *, timeout: float, chunk_size: int
) -> Optional[int]:
    """One transfer attempt: append to ``part`` from where it left off.

    Issues an HTTP ``Range`` request when ``part`` already holds bytes and
    restarts from scratch when the server ignores it (a 200 instead of a
    206 — also the ``file://`` case, which knows no ranges).  Returns the
    expected *total* size when the server declared one (``Content-Length``
    plus the resume offset), else ``None``.  Transient errors — including
    injected ``fetch`` faults, which model the connection dying mid-body —
    propagate to the caller's retry loop with the bytes received so far
    durably appended, so the next attempt resumes instead of restarting.
    """
    offset = part.stat().st_size if part.exists() else 0
    request = urllib.request.Request(url)
    if offset:
        request.add_header("Range", f"bytes={offset}-")
    try:
        response = urllib.request.urlopen(request, timeout=timeout)
    except urllib.error.HTTPError as exc:
        if exc.code == 416 and offset:
            # Range not satisfiable: every byte is already in the part
            # file (the previous attempt died after the final chunk).
            return None
        raise
    with response:
        status = getattr(response, "status", None)
        if offset and status != 206:
            # The server ignored the range request; the body is the whole
            # file again, so the partial bytes must be discarded.
            part.unlink(missing_ok=True)
            offset = 0
        declared = response.headers.get("Content-Length")
        expected = offset + int(declared) if declared is not None else None
        with part.open("ab") as out:
            while True:
                # The ``fetch`` fault point fires once per chunk, before
                # the read — an injected fault is indistinguishable from
                # the socket dying between chunks.
                trip(FETCH)
                block = response.read(chunk_size)
                if not block:
                    break
                out.write(block)
            out.flush()
            os.fsync(out.fileno())
    return expected


def fetch_file(
    url: str,
    dest: PathLike,
    *,
    sha256: Optional[str] = None,
    timeout: float = 60.0,
    chunk_size: int = 1 << 20,
    max_attempts: int = 4,
    base_delay: float = 0.25,
    backoff_cap: float = 8.0,
    sleep: Callable[[float], None] = time.sleep,
) -> Path:
    """Download ``url`` to ``dest``, resumably, verifying ``sha256`` when given.

    The payload accumulates in a ``<dest>.part`` sibling; transient failures
    (connection resets, timeouts, truncated bodies) are retried up to
    ``max_attempts`` times with capped exponential backoff
    (``base_delay * 2^attempt``, at most ``backoff_cap`` seconds, via the
    injectable ``sleep``), and every retry resumes with an HTTP ``Range``
    request from the bytes already on disk — a multi-GB dataset never
    restarts from zero because the connection dropped at 99%.  Completion is
    strict: a zero-byte download is a hard failure, a body shorter than the
    declared ``Content-Length`` after the final attempt is a hard failure,
    and a checksum mismatch **deletes the partial file** (nothing poisoned
    is left to be resumed into a future download) and raises.  Only a fully
    verified payload is atomically renamed to ``dest``, so no partial file
    ever sits at the destination path.
    """
    dest = Path(dest)
    dest.parent.mkdir(parents=True, exist_ok=True)
    part = _partial_path(dest)
    expected: Optional[int] = None
    failure: Optional[BaseException] = None
    for attempt in range(max_attempts):
        if attempt:
            sleep(min(backoff_cap, base_delay * (2 ** (attempt - 1))))
        failure = None
        try:
            expected = _transfer_once(
                url, part, timeout=timeout, chunk_size=chunk_size
            )
        except (OSError, InjectedFault) as exc:
            # URLError is an OSError subclass, but so are the bare socket
            # timeouts/resets that response.read() raises mid-body; an
            # injected fetch fault models exactly those.  All transient:
            # the part file keeps its bytes and the next attempt resumes.
            failure = exc
            continue
        size = part.stat().st_size if part.exists() else 0
        if expected is not None and size < expected:
            # The connection closed cleanly but early (truncated body);
            # retry — the range request continues from `size`.
            failure = DatasetError(
                f"download of {url} is truncated: expected {expected} bytes, "
                f"got {size}"
            )
            continue
        break
    if failure is not None:
        raise DatasetError(f"cannot download {url}: {failure}") from failure
    size = part.stat().st_size if part.exists() else 0
    if size == 0:
        part.unlink(missing_ok=True)
        raise DatasetError(
            f"download of {url} is empty (zero bytes) — refusing to install "
            "an empty dataset file"
        )
    digest = sha256_of(part)
    if sha256 is not None and digest != sha256:
        # A poisoned partial file must not survive: resuming a future
        # download on top of corrupt bytes could never converge.
        part.unlink(missing_ok=True)
        raise DatasetError(
            f"download of {url} does not match the pinned SHA-256 "
            f"(expected {sha256}, got {digest})"
        )
    os.replace(part, dest)
    _sidecar(dest).write_text(digest + "\n", encoding="utf-8")
    return dest


def fetch_dataset(
    name: str,
    *,
    directory: Optional[PathLike] = None,
    download: bool = False,
    timeout: float = 60.0,
) -> Optional[Path]:
    """Locate (and optionally download) a registered SNAP temporal dataset.

    Returns the local path when the file is present and checksum-clean.
    When absent: downloads it if ``download=True``, otherwise returns
    ``None`` — the offline-safe default, so callers can skip with a message
    instead of failing in air-gapped environments.
    """
    try:
        spec = SNAP_TEMPORAL_DATASETS[name]
    except KeyError:
        raise DatasetError(
            f"unknown SNAP temporal dataset {name!r}; "
            f"known: {sorted(SNAP_TEMPORAL_DATASETS)}"
        ) from None
    path = dataset_dir(directory) / spec.filename
    if path.exists():
        # Re-hashing a multi-hundred-MB dump on every call would dominate a
        # cache-hit replay, so the full verification is skipped while the
        # sidecar digest is at least as new as the file (the file was not
        # modified since its digest was recorded).  Touching the file — or
        # deleting the sidecar — re-triggers the full check, and
        # :func:`verify_checksum` stays available for explicit audits.
        sidecar = _sidecar(path)
        if (
            sidecar.exists()
            and sidecar.stat().st_mtime_ns >= path.stat().st_mtime_ns
        ):
            return path
        verify_checksum(path, spec.sha256)
        return path
    if not download:
        return None
    return fetch_file(spec.url, path, sha256=spec.sha256, timeout=timeout)


def dataset_unavailable_message(name: str, directory: Optional[PathLike] = None) -> str:
    """The one canonical "dataset missing, here is how to get it" message."""
    spec = SNAP_TEMPORAL_DATASETS.get(name)
    where = dataset_dir(directory)
    if spec is None:
        return f"dataset {name!r} is not registered"
    return (
        f"SNAP dataset {name!r} is not present at {where / spec.filename} — "
        f"skipping (offline-safe).  Fetch it with "
        f"repro.experiments.fetch.fetch_dataset({name!r}, download=True) "
        f"or download {spec.url} into {where}/ manually."
    )


def snap_temporal_stream(
    name: str,
    *,
    directory: Optional[PathLike] = None,
    download: bool = False,
    window: Optional[float] = None,
    max_live: Optional[int] = None,
    gc_isolated: bool = True,
    self_loops: str = "skip",
    unsorted: str = "error",
):
    """A lazy, disk-cached update stream over a real SNAP temporal dataset.

    Parses the (possibly gzipped) download with the streaming parser and
    replays it through the given retention policy via
    :func:`~repro.workloads.temporal.cached_temporal_stream` — constant
    memory end to end, so even the larger SNAP dumps replay fine.
    ``self_loops`` defaults to ``"skip"`` because real SNAP temporal dumps
    contain self-interactions.

    Raises
    ------
    DatasetError
        When the file is absent and ``download=False`` (message includes the
        fetch instructions) or the download/checksum fails.
    """
    from repro.workloads.temporal import cached_temporal_stream

    path = fetch_dataset(name, directory=directory, download=download, timeout=60.0)
    if path is None:
        raise DatasetError(dataset_unavailable_message(name, directory))
    return cached_temporal_stream(
        path,
        self_loops=self_loops,
        unsorted=unsorted,
        window=window,
        max_live=max_live,
        gc_isolated=gc_isolated,
    )


def available_snap_datasets(
    directory: Optional[PathLike] = None,
) -> Tuple[str, ...]:
    """Names of registered datasets whose files are already on disk."""
    where = dataset_dir(directory)
    return tuple(
        name
        for name, spec in SNAP_TEMPORAL_DATASETS.items()
        if (where / spec.filename).exists()
    )
