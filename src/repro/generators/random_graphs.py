"""Classic random graph generators.

These generators back the synthetic dataset registry and the property-based
tests.  They only rely on Python's ``random`` module so that experiments are
reproducible from a single integer seed.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.graphs.dynamic_graph import DynamicGraph


def erdos_renyi_graph(
    num_vertices: int,
    edge_probability: float,
    *,
    seed: Optional[int] = None,
) -> DynamicGraph:
    """Generate a G(n, p) Erdős–Rényi random graph.

    Uses the skip-sampling technique so the cost is proportional to the number
    of generated edges rather than ``n^2`` for sparse graphs.
    """
    if num_vertices < 0:
        raise ValueError("num_vertices must be non-negative")
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must lie in [0, 1]")
    rng = random.Random(seed)
    graph = DynamicGraph(vertices=range(num_vertices))
    if edge_probability == 0.0 or num_vertices < 2:
        return graph
    if edge_probability == 1.0:
        for u in range(num_vertices):
            for v in range(u + 1, num_vertices):
                graph.add_edge(u, v)
        return graph
    # Skip sampling over the implicit enumeration of all vertex pairs.
    import math

    log_q = math.log(1.0 - edge_probability)
    v = 1
    w = -1
    while v < num_vertices:
        r = rng.random()
        w = w + 1 + int(math.log(1.0 - r) / log_q)
        while w >= v and v < num_vertices:
            w -= v
            v += 1
        if v < num_vertices:
            graph.add_edge(v, w)
    return graph


def gnm_random_graph(
    num_vertices: int,
    num_edges: int,
    *,
    seed: Optional[int] = None,
) -> DynamicGraph:
    """Generate a uniform random graph with exactly ``num_edges`` edges."""
    if num_vertices < 0:
        raise ValueError("num_vertices must be non-negative")
    max_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges > max_edges:
        raise ValueError(f"cannot place {num_edges} edges in a {num_vertices}-vertex graph")
    rng = random.Random(seed)
    graph = DynamicGraph(vertices=range(num_vertices))
    placed = 0
    while placed < num_edges:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u != v and graph.add_edge_if_missing(u, v):
            placed += 1
    return graph


def barabasi_albert_graph(
    num_vertices: int,
    edges_per_vertex: int,
    *,
    seed: Optional[int] = None,
) -> DynamicGraph:
    """Generate a Barabási–Albert preferential-attachment graph.

    Every new vertex attaches to ``edges_per_vertex`` existing vertices chosen
    proportionally to their degree (via the repeated-endpoints trick), giving
    a power-law degree distribution with exponent ≈ 3.
    """
    if edges_per_vertex < 1:
        raise ValueError("edges_per_vertex must be at least 1")
    if num_vertices < edges_per_vertex + 1:
        raise ValueError("num_vertices must exceed edges_per_vertex")
    rng = random.Random(seed)
    graph = DynamicGraph(vertices=range(num_vertices))
    # Seed clique-free core: a star over the first m+1 vertices.
    repeated_endpoints: List[int] = []
    for v in range(1, edges_per_vertex + 1):
        graph.add_edge(0, v)
        repeated_endpoints.extend((0, v))
    for v in range(edges_per_vertex + 1, num_vertices):
        targets = set()
        while len(targets) < edges_per_vertex:
            targets.add(rng.choice(repeated_endpoints))
        for t in targets:
            graph.add_edge(v, t)
            repeated_endpoints.extend((v, t))
    return graph


def chung_lu_graph(
    expected_degrees: List[float],
    *,
    seed: Optional[int] = None,
) -> DynamicGraph:
    """Generate a Chung–Lu random graph with the given expected degrees.

    Edge ``(u, v)`` is present independently with probability
    ``min(1, w_u * w_v / sum(w))``.  The paper's synthetic stand-ins use this
    with a power-law weight sequence.
    """
    n = len(expected_degrees)
    rng = random.Random(seed)
    graph = DynamicGraph(vertices=range(n))
    total_weight = sum(expected_degrees)
    if total_weight <= 0:
        return graph
    # Order vertices by decreasing weight so the skip-sampling loop below can
    # prune early once probabilities become negligible.
    order = sorted(range(n), key=lambda i: -expected_degrees[i])
    weights = [expected_degrees[i] for i in order]
    for i in range(n):
        wi = weights[i]
        if wi <= 0:
            break
        for j in range(i + 1, n):
            p = wi * weights[j] / total_weight
            if p >= 1.0:
                graph.add_edge_if_missing(order[i], order[j])
                continue
            if p <= 1e-12:
                break
            if rng.random() < p:
                graph.add_edge_if_missing(order[i], order[j])
    return graph


def random_regular_graph_edges(
    num_vertices: int,
    degree: int,
    *,
    seed: Optional[int] = None,
    max_retries: int = 50,
) -> List[Tuple[int, int]]:
    """Return the edge list of an (approximately) random ``degree``-regular graph.

    Uses stub matching with retries; falls back to discarding clashing stubs
    after ``max_retries`` attempts, so the result may be slightly irregular
    for adversarial parameter choices.  Raises ``ValueError`` when
    ``num_vertices * degree`` is odd.
    """
    if (num_vertices * degree) % 2 != 0:
        raise ValueError("num_vertices * degree must be even")
    rng = random.Random(seed)
    for _ in range(max_retries):
        stubs = [v for v in range(num_vertices) for _ in range(degree)]
        rng.shuffle(stubs)
        edges = set()
        ok = True
        for i in range(0, len(stubs), 2):
            u, v = stubs[i], stubs[i + 1]
            if u == v or (min(u, v), max(u, v)) in edges:
                ok = False
                break
            edges.add((min(u, v), max(u, v)))
        if ok:
            return sorted(edges)
    # Last resort: simply drop clashing pairs.
    stubs = [v for v in range(num_vertices) for _ in range(degree)]
    rng.shuffle(stubs)
    edges = set()
    for i in range(0, len(stubs), 2):
        u, v = stubs[i], stubs[i + 1]
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return sorted(edges)


def random_regular_graph(
    num_vertices: int,
    degree: int,
    *,
    seed: Optional[int] = None,
) -> DynamicGraph:
    """Generate an (approximately) random regular graph."""
    edges = random_regular_graph_edges(num_vertices, degree, seed=seed)
    return DynamicGraph(vertices=range(num_vertices), edges=edges)


def random_tree(num_vertices: int, *, seed: Optional[int] = None) -> DynamicGraph:
    """Generate a uniformly random labelled tree via a random attachment chain."""
    rng = random.Random(seed)
    graph = DynamicGraph(vertices=range(num_vertices))
    for v in range(1, num_vertices):
        graph.add_edge(v, rng.randrange(v))
    return graph


def random_bipartite_graph(
    left_size: int,
    right_size: int,
    edge_probability: float,
    *,
    seed: Optional[int] = None,
) -> DynamicGraph:
    """Generate a random bipartite graph; the left part is an independent set."""
    rng = random.Random(seed)
    graph = DynamicGraph(vertices=range(left_size + right_size))
    for u in range(left_size):
        for v in range(left_size, left_size + right_size):
            if rng.random() < edge_probability:
                graph.add_edge(u, v)
    return graph
