"""Synthetic stand-ins for the 22 real graphs of Table I.

The paper evaluates on SNAP / Laboratory-for-Web-Algorithmics graphs ranging
from 75 k vertices (Epinions) to 109 M vertices and 3.4 B edges (uk-2007).
Those datasets are not redistributable inside this repository and are far
beyond what a pure-Python prototype can stream, so each named dataset is
replaced by a *scaled synthetic stand-in*:

* the number of vertices is scaled down (the scale factor is recorded),
* the average degree of the original is preserved,
* the degree distribution is power-law with an exponent chosen per dataset
  (web graphs are given heavier tails than communication graphs),

which preserves the properties the algorithms are sensitive to — density,
skew, and the easy/hard classification — while keeping every experiment
runnable on a laptop.  See DESIGN.md §3 for the substitution rationale.

Every dataset is generated deterministically from its name, so experiments
are reproducible without shipping any graph files.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.exceptions import DatasetError
from repro.generators.power_law import power_law_degree_sequence, erased_configuration_model
from repro.graphs.dynamic_graph import DynamicGraph

#: Default number of vertices used for easy stand-ins.
DEFAULT_EASY_SCALE = 3000
#: Default number of vertices used for hard stand-ins (denser / heavier graphs).
DEFAULT_HARD_SCALE = 4000


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one Table I dataset and its synthetic stand-in.

    Attributes
    ----------
    name:
        Dataset name as it appears in the paper.
    paper_vertices, paper_edges, paper_average_degree:
        The statistics reported in Table I.
    category:
        ``"easy"`` when VCSolver solved the instance within five hours in the
        paper, ``"hard"`` otherwise.
    beta:
        Power-law exponent used for the synthetic degree sequence.
    scaled_vertices:
        Number of vertices in the stand-in.
    """

    name: str
    paper_vertices: int
    paper_edges: int
    paper_average_degree: float
    category: str
    beta: float
    scaled_vertices: int

    @property
    def scale_factor(self) -> float:
        """How much smaller the stand-in is than the original (vertex count ratio)."""
        return self.paper_vertices / self.scaled_vertices

    @property
    def seed(self) -> int:
        """Deterministic seed derived from the dataset name."""
        return sum(ord(c) * (i + 1) for i, c in enumerate(self.name)) % (2**31)


def _spec(name, n, m, category, beta, scaled=None) -> DatasetSpec:
    avg = 2.0 * m / n
    if scaled is None:
        scaled = DEFAULT_EASY_SCALE if category == "easy" else DEFAULT_HARD_SCALE
    return DatasetSpec(
        name=name,
        paper_vertices=n,
        paper_edges=m,
        paper_average_degree=round(avg, 2),
        category=category,
        beta=beta,
        scaled_vertices=scaled,
    )


#: The 22 datasets of Table I in paper order.  The first thirteen are "easy"
#: (exactly solvable by VCSolver within five hours), the last nine "hard".
TABLE1_DATASETS: List[DatasetSpec] = [
    _spec("Epinions", 75_879, 405_740, "easy", 2.1),
    _spec("Slashdot", 82_168, 504_230, "easy", 2.1),
    _spec("Email", 265_214, 364_481, "easy", 2.6),
    _spec("com-dblp", 317_080, 1_049_866, "easy", 2.4),
    _spec("com-amazon", 334_863, 925_872, "easy", 2.5),
    _spec("web-Google", 875_713, 4_322_051, "easy", 2.2),
    _spec("web-BerkStan", 685_230, 6_649_470, "easy", 2.0),
    _spec("in-2004", 1_382_870, 13_591_473, "easy", 2.0),
    _spec("as-skitter", 1_696_415, 11_095_298, "easy", 2.1),
    _spec("hollywood", 1_985_306, 114_492_816, "easy", 1.9),
    _spec("WikiTalk", 2_394_385, 4_659_565, "easy", 2.5),
    _spec("com-lj", 3_997_962, 34_681_189, "easy", 2.1),
    _spec("soc-LiveJournal", 4_847_571, 42_851_237, "easy", 2.1),
    _spec("soc-pokec", 1_632_803, 22_301_964, "hard", 2.0),
    _spec("wiki-topcats", 1_791_489, 25_444_207, "hard", 2.0),
    _spec("com-orkut", 3_072_441, 117_185_083, "hard", 1.9),
    _spec("cit-Patents", 3_774_768, 16_518_947, "hard", 2.2),
    _spec("uk-2005", 39_454_746, 783_027_125, "hard", 1.9),
    _spec("it-2004", 41_290_682, 1_027_474_947, "hard", 1.9),
    _spec("twitter-2010", 41_652_230, 1_468_365_182, "hard", 1.9),
    _spec("Friendster", 65_608_366, 1_806_067_135, "hard", 1.9),
    _spec("uk-2007", 109_499_800, 3_448_528_200, "hard", 1.9),
]

_SPEC_BY_NAME: Dict[str, DatasetSpec] = {spec.name.lower(): spec for spec in TABLE1_DATASETS}

#: Datasets used in Table III / Fig 5(c): the last seven easy graphs.
LAST_SEVEN_EASY = [spec.name for spec in TABLE1_DATASETS[6:13]]


def dataset_names(category: Optional[str] = None) -> List[str]:
    """Return dataset names, optionally filtered to ``"easy"`` or ``"hard"``."""
    if category is None:
        return [spec.name for spec in TABLE1_DATASETS]
    if category not in ("easy", "hard"):
        raise DatasetError(f"unknown dataset category {category!r}")
    return [spec.name for spec in TABLE1_DATASETS if spec.category == category]


def get_dataset_spec(name: str) -> DatasetSpec:
    """Look up the :class:`DatasetSpec` for ``name`` (case-insensitive)."""
    try:
        return _SPEC_BY_NAME[name.lower()]
    except KeyError:
        raise DatasetError(f"unknown dataset {name!r}; known: {dataset_names()}") from None


def _degree_cap(spec: DatasetSpec) -> int:
    # Heavy-tailed web/social graphs get a higher degree ceiling.
    return max(8, int(math.sqrt(spec.scaled_vertices) * (2.2 - min(spec.beta, 2.1))) * 4)


def load_dataset(
    name: str,
    *,
    scaled_vertices: Optional[int] = None,
    seed: Optional[int] = None,
) -> DynamicGraph:
    """Materialise the synthetic stand-in graph for dataset ``name``.

    The generated graph matches the original's average degree (up to sampling
    noise) with a power-law degree distribution of exponent ``spec.beta``.

    Parameters
    ----------
    scaled_vertices:
        Override the registry's default stand-in size.
    seed:
        Override the deterministic per-dataset seed.
    """
    spec = get_dataset_spec(name)
    n = scaled_vertices if scaled_vertices is not None else spec.scaled_vertices
    rng_seed = spec.seed if seed is None else seed
    target_avg = spec.paper_average_degree
    degrees = _degree_sequence_matching_average(
        n, spec.beta, target_avg, max_degree=_degree_cap(spec), seed=rng_seed
    )
    return erased_configuration_model(degrees, seed=rng_seed + 1)


def _degree_sequence_matching_average(
    num_vertices: int,
    beta: float,
    target_average: float,
    *,
    max_degree: int,
    seed: int,
) -> List[int]:
    """Sample a power-law degree sequence, then rescale it to hit a target mean.

    A raw power-law sample with exponent ``beta`` has some mean ``mu``; we
    multiply every degree by ``target_average / mu`` (clamping to
    ``[1, max_degree]``) so the stand-in's density matches the original graph.
    """
    base = power_law_degree_sequence(
        num_vertices, beta, min_degree=1, max_degree=max_degree, seed=seed
    )
    if not base:
        return base
    mean = sum(base) / len(base)
    factor = target_average / mean if mean > 0 else 1.0
    rng = random.Random(seed + 7)
    scaled: List[int] = []
    for d in base:
        value = d * factor
        floor = int(value)
        # Randomised rounding keeps the expected mean exact.
        if rng.random() < (value - floor):
            floor += 1
        scaled.append(max(1, min(max_degree, floor)))
    if sum(scaled) % 2 == 1:
        scaled[-1] += 1
    return scaled


def load_datasets(
    names: Iterable[str],
    *,
    scaled_vertices: Optional[int] = None,
    seed: Optional[int] = None,
) -> Dict[str, DynamicGraph]:
    """Load several datasets at once; returns ``{name: graph}`` in input order."""
    return {
        name: load_dataset(name, scaled_vertices=scaled_vertices, seed=seed) for name in names
    }


def table1_rows(*, scaled_vertices: Optional[int] = None) -> List[Dict[str, object]]:
    """Return Table I rows for both the original and the synthetic stand-ins.

    Each row records the paper's statistics alongside the stand-in's actual
    ``n``, ``m`` and average degree so EXPERIMENTS.md can show them side by
    side.
    """
    rows: List[Dict[str, object]] = []
    for spec in TABLE1_DATASETS:
        graph = load_dataset(spec.name, scaled_vertices=scaled_vertices)
        rows.append(
            {
                "name": spec.name,
                "category": spec.category,
                "paper_n": spec.paper_vertices,
                "paper_m": spec.paper_edges,
                "paper_avg_degree": spec.paper_average_degree,
                "repro_n": graph.num_vertices,
                "repro_m": graph.num_edges,
                "repro_avg_degree": round(graph.average_degree(), 2),
                "scale_factor": round(spec.paper_vertices / graph.num_vertices, 1),
            }
        )
    return rows
