"""Worst-case graph families from Theorem 3 of the paper.

Theorem 3 shows that for every ``k >= 2`` there is an infinite family of
graphs on which a k-maximal independent set can be as small as ``2/Δ`` times
the optimum, i.e. allowing more swap sizes does not improve the worst-case
approximation ratio:

* for ``k ∈ {2, 3}`` the witnesses are *subdivided complete graphs* ``K'_n``
  (every edge of ``K_n`` replaced by a path of length two),
* for ``k >= 4`` the witnesses are *subdivided hypercubes* ``Q'_n``.

In both constructions the original vertices form a k-maximal independent set
of size ``n`` (resp. ``2^n``) while the subdivision vertices form an
independent set of size ``m`` — the number of original edges — which is the
maximum.  These generators are used by the theory benchmarks and by tests
verifying the bound of Theorem 2 is tight in the sense of Theorem 3.
"""

from __future__ import annotations

import random
from itertools import combinations
from typing import Dict, List, Set, Tuple

from repro.graphs.dynamic_graph import DynamicGraph
from repro.updates.operations import UpdateOperation, apply_update
from repro.updates.streams import UpdateStream


def complete_graph(num_vertices: int) -> DynamicGraph:
    """Return the complete graph ``K_n`` on vertices ``0..n-1``."""
    graph = DynamicGraph(vertices=range(num_vertices))
    for u, v in combinations(range(num_vertices), 2):
        graph.add_edge(u, v)
    return graph


def hypercube_graph(dimension: int) -> DynamicGraph:
    """Return the hypercube graph ``Q_n`` with ``2^dimension`` vertices.

    Vertices are integers ``0..2^n - 1``; two vertices are adjacent when their
    binary representations differ in exactly one bit.
    """
    if dimension < 0:
        raise ValueError("dimension must be non-negative")
    size = 1 << dimension
    graph = DynamicGraph(vertices=range(size))
    for v in range(size):
        for bit in range(dimension):
            u = v ^ (1 << bit)
            if u > v:
                graph.add_edge(v, u)
    return graph


def subdivide(graph: DynamicGraph) -> Tuple[DynamicGraph, Dict[Tuple[int, int], int], Set[int]]:
    """Replace every edge ``(u, v)`` by a path ``u - w - v`` through a new vertex ``w``.

    Returns
    -------
    (subdivided_graph, subdivision_map, original_vertices)
        ``subdivision_map`` maps each original edge (canonically ordered) to
        the id of the vertex inserted on it, and ``original_vertices`` is the
        set of vertex ids carried over from the input graph.
    """
    original_vertices = set(graph.vertices())
    if original_vertices and not all(isinstance(v, int) for v in original_vertices):
        raise ValueError("subdivide requires integer vertex ids")
    next_id = (max(original_vertices) + 1) if original_vertices else 0
    result = DynamicGraph(vertices=original_vertices)
    subdivision_map: Dict[Tuple[int, int], int] = {}
    for u, v in graph.edges():
        key = (u, v) if u <= v else (v, u)
        w = next_id
        next_id += 1
        subdivision_map[key] = w
        result.add_vertex(w)
        result.add_edge(u, w)
        result.add_edge(w, v)
    return result, subdivision_map, original_vertices


def subdivided_complete_graph(num_vertices: int) -> Tuple[DynamicGraph, Set[int], Set[int]]:
    """Return ``K'_n``: the Theorem 3 witness for ``k ∈ {2, 3}``.

    Returns the graph together with the set of original vertices (a k-maximal
    independent set of size ``n``) and the set of subdivision vertices (a
    maximum independent set of size ``n(n-1)/2``).
    """
    base = complete_graph(num_vertices)
    subdivided, sub_map, originals = subdivide(base)
    return subdivided, originals, set(sub_map.values())


def subdivided_hypercube_graph(dimension: int) -> Tuple[DynamicGraph, Set[int], Set[int]]:
    """Return ``Q'_n``: the Theorem 3 witness for ``k >= 4``.

    Returns the graph together with the set of original vertices (a k-maximal
    independent set of size ``2^n``) and the set of subdivision vertices (a
    maximum independent set of size ``2^(n-1) n``).
    """
    base = hypercube_graph(dimension)
    subdivided, sub_map, originals = subdivide(base)
    return subdivided, originals, set(sub_map.values())


def worst_case_ratio(num_original: int, num_subdivision: int) -> float:
    """Return the achieved approximation ratio ``α(G') / |I|`` of a witness."""
    if num_original == 0:
        return 0.0
    return num_subdivision / num_original


def flicker_update_stream(
    num_vertices: int = 6,
    *,
    rounds: int = 20,
    seed: int = 0,
) -> Tuple[DynamicGraph, UpdateStream]:
    """Adversarial *flicker* workload over the ``K'_n`` Theorem 3 witness.

    Each round picks one subdivision vertex ``w`` of ``K'_n`` (sitting on the
    original edge ``u - v``) and flickers it: delete both incident paths
    ``u - w`` and ``w - v``, momentarily re-join the original endpoints with a
    direct edge ``u - v``, then retract it and restore the subdivision.  Every
    round is a no-op on the graph, but each step lands exactly on the
    structure Theorem 3 exploits — the swap engine is repeatedly dragged
    between the ``n``-sized k-maximal solution (original vertices) and the
    ``m``-sized optimum (subdivision vertices), so candidate queues never go
    quiet.  A second flavour of round flickers a whole subdivision *vertex*
    (delete ``w`` with its path, re-insert it with the same neighbours).

    The net effect of the full stream is identity: the final graph equals the
    initial witness, which makes the stream ideal as a service-ingest
    workload — any engine digest after the stream can be compared against a
    warm-started reference without replaying history.

    Returns ``(graph, stream)``: the initial ``K'_n`` witness and a seeded,
    materialised :class:`~repro.updates.streams.UpdateStream` whose
    description pins the construction parameters.
    """
    if num_vertices < 3:
        raise ValueError("flicker_update_stream requires num_vertices >= 3")
    if rounds < 0:
        raise ValueError("rounds must be non-negative")
    graph, originals, _subdivisions = subdivided_complete_graph(num_vertices)
    base = complete_graph(num_vertices)
    _, sub_map, _ = subdivide(base)
    rng = random.Random(seed)
    edges = sorted(sub_map)
    scratch = graph.copy()
    operations: List[UpdateOperation] = []

    def emit(operation: UpdateOperation) -> None:
        apply_update(scratch, operation)
        operations.append(operation)

    for round_index in range(rounds):
        u, v = edges[rng.randrange(len(edges))]
        w = sub_map[(u, v)]
        if round_index % 2 == 0:
            # Edge flicker: collapse the subdivision into a direct edge and back.
            emit(UpdateOperation.delete_edge(u, w))
            emit(UpdateOperation.delete_edge(w, v))
            emit(UpdateOperation.insert_edge(u, v))
            emit(UpdateOperation.delete_edge(u, v))
            emit(UpdateOperation.insert_edge(u, w))
            emit(UpdateOperation.insert_edge(w, v))
        else:
            # Vertex flicker: drop the subdivision vertex and bring it back
            # with its incident path in one compound insertion.
            emit(UpdateOperation.delete_vertex(w))
            emit(UpdateOperation.insert_vertex(w, (u, v)))
    stream = UpdateStream(
        operations=operations,
        description=(
            f"worst-case-flicker(n={num_vertices},rounds={rounds},seed={seed})"
        ),
        seed=seed,
        metadata={
            "family": "subdivided_complete",
            "parameter": num_vertices,
            "rounds": rounds,
            "originals": len(originals),
        },
    )
    return graph, stream


def theorem3_witnesses(max_clique_size: int = 8, max_hypercube_dim: int = 5) -> List[dict]:
    """Enumerate small Theorem 3 witnesses for benchmarking and tests.

    Each entry records the family, the parameter, the size of the original
    (k-maximal) independent set, the independence number and the maximum
    degree, so callers can verify ``alpha / |I| = Δ / 2``.
    """
    witnesses: List[dict] = []
    for n in range(4, max_clique_size + 1):
        graph, originals, subdivisions = subdivided_complete_graph(n)
        witnesses.append(
            {
                "family": "subdivided_complete",
                "parameter": n,
                "graph": graph,
                "k_maximal_set": originals,
                "optimal_set": subdivisions,
                "max_degree": graph.max_degree(),
                "ratio": worst_case_ratio(len(originals), len(subdivisions)),
            }
        )
    for dim in range(4, max_hypercube_dim + 1):
        graph, originals, subdivisions = subdivided_hypercube_graph(dim)
        witnesses.append(
            {
                "family": "subdivided_hypercube",
                "parameter": dim,
                "graph": graph,
                "k_maximal_set": originals,
                "optimal_set": subdivisions,
                "max_degree": graph.max_degree(),
                "ratio": worst_case_ratio(len(originals), len(subdivisions)),
            }
        )
    return witnesses
