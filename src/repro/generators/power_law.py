"""Power-law graph generators.

The paper analyses its algorithms on *power-law bounded* (PLB) graphs
(Definition 2) and evaluates them on nine Power-Law Random (PLR) graphs
generated with NetworkX by varying the exponent β from 1.9 to 2.7 (Fig 10).
This module provides:

* :func:`power_law_degree_sequence` — a degree sequence following a shifted
  power law ``P(d) ∝ (d + t)^(-β)``, the PLB reference distribution,
* :func:`erased_configuration_model` — the random-matching model the paper
  uses in the Lemma 2 analysis (stubs matched uniformly, loops and multi
  edges erased),
* :func:`power_law_random_graph` — the Fig 10 workload: a PLR graph with a
  chosen exponent, built as an erased configuration model over a power-law
  degree sequence,
* :func:`plb_graph` — a convenience wrapper that re-samples until the result
  certifiably satisfies the PLB envelope for the requested parameters.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

from repro.graphs.dynamic_graph import DynamicGraph
from repro.graphs.properties import check_power_law_bounded


def power_law_degree_sequence(
    num_vertices: int,
    beta: float,
    *,
    min_degree: int = 1,
    max_degree: Optional[int] = None,
    shift: float = 0.0,
    seed: Optional[int] = None,
) -> List[int]:
    """Sample a degree sequence from a (shifted, truncated) power law.

    Parameters
    ----------
    num_vertices:
        Length of the sequence.
    beta:
        Power-law exponent; larger values concentrate mass on small degrees.
    min_degree, max_degree:
        Degree support ``[min_degree, max_degree]``.  ``max_degree`` defaults
        to ``ceil(sqrt(num_vertices))``, a common cutoff that keeps the erased
        configuration model close to simple.
    shift:
        The ``t`` parameter of the shifted power law ``(d + t)^(-β)``.
    seed:
        Seed for reproducibility.

    Returns
    -------
    list of int
        A degree sequence whose sum is even (the last entry is bumped by one
        when necessary so stub matching is possible).
    """
    if num_vertices <= 0:
        return []
    if min_degree < 1:
        raise ValueError("min_degree must be at least 1")
    if max_degree is None:
        max_degree = max(min_degree, int(math.ceil(math.sqrt(num_vertices))))
    if max_degree < min_degree:
        raise ValueError("max_degree must be at least min_degree")
    rng = random.Random(seed)
    support = list(range(min_degree, max_degree + 1))
    weights = [(d + shift) ** (-beta) for d in support]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)
    degrees: List[int] = []
    for _ in range(num_vertices):
        r = rng.random()
        # Binary search over the cumulative distribution.
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < r:
                lo = mid + 1
            else:
                hi = mid
        degrees.append(support[lo])
    if sum(degrees) % 2 == 1:
        degrees[-1] += 1
    return degrees


def erased_configuration_model(
    degree_sequence: List[int],
    *,
    seed: Optional[int] = None,
) -> DynamicGraph:
    """Build a simple graph from ``degree_sequence`` via the erased configuration model.

    Each vertex ``v`` receives ``degree_sequence[v]`` stubs; stubs are matched
    uniformly at random and self loops / parallel edges are discarded, exactly
    the model used in the paper's Lemma 2 analysis.  Actual degrees may
    therefore fall slightly below the requested ones.
    """
    rng = random.Random(seed)
    n = len(degree_sequence)
    graph = DynamicGraph(vertices=range(n))
    stubs: List[int] = []
    for v, d in enumerate(degree_sequence):
        if d < 0:
            raise ValueError("degrees must be non-negative")
        stubs.extend([v] * d)
    rng.shuffle(stubs)
    for i in range(0, len(stubs) - 1, 2):
        u, v = stubs[i], stubs[i + 1]
        if u != v:
            graph.add_edge_if_missing(u, v)
    return graph


def power_law_random_graph(
    num_vertices: int,
    beta: float,
    *,
    min_degree: int = 1,
    max_degree: Optional[int] = None,
    shift: float = 0.0,
    seed: Optional[int] = None,
) -> DynamicGraph:
    """Generate a Power-Law Random (PLR) graph with exponent ``beta``.

    This is the Fig 10 workload of the paper (scaled down): a power-law degree
    sequence materialised through the erased configuration model.  Smaller
    ``beta`` gives denser graphs, matching the paper's observation that the
    index-based competitors degrade as ``beta`` shrinks.
    """
    degrees = power_law_degree_sequence(
        num_vertices,
        beta,
        min_degree=min_degree,
        max_degree=max_degree,
        shift=shift,
        seed=seed,
    )
    return erased_configuration_model(degrees, seed=None if seed is None else seed + 1)


def plb_graph(
    num_vertices: int,
    beta: float,
    *,
    shift: float = 0.0,
    seed: Optional[int] = None,
    max_attempts: int = 5,
) -> DynamicGraph:
    """Generate a graph that certifiably satisfies the PLB envelope.

    Re-samples a power-law random graph until
    :func:`repro.graphs.properties.check_power_law_bounded` confirms a valid
    ``c1 >= c2 > 0`` envelope for the requested ``beta`` and ``shift``; the
    last sample is returned regardless after ``max_attempts`` tries (the
    envelope always exists for the sampled graphs, re-sampling merely tightens
    ``c2``).
    """
    attempt_seed = seed
    graph = power_law_random_graph(num_vertices, beta, shift=shift, seed=attempt_seed)
    for _ in range(max_attempts):
        fit = check_power_law_bounded(graph, beta=beta, shift=shift)
        if fit.is_power_law_bounded:
            return graph
        attempt_seed = None if attempt_seed is None else attempt_seed + 17
        graph = power_law_random_graph(num_vertices, beta, shift=shift, seed=attempt_seed)
    return graph


def average_degree_for_beta(beta: float, min_degree: int, max_degree: int, shift: float = 0.0) -> float:
    """Expected degree of the truncated shifted power law — used to size datasets."""
    support = range(min_degree, max_degree + 1)
    weights = [(d + shift) ** (-beta) for d in support]
    total = sum(weights)
    return sum(d * w for d, w in zip(support, weights)) / total
