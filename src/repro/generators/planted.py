"""Graphs with a planted (known) large independent set.

The experiment harness needs instances whose independence number is known (or
tightly bounded) without running the exact solver, both for tests of the exact
solver itself and for accuracy measurements on instances that the exact solver
cannot handle.  A *planted independent set graph* hides an independent set of
a chosen size inside an otherwise random graph; with sufficiently high noise
density the planted set is, with overwhelming probability, the unique maximum
independent set.
"""

from __future__ import annotations

import random
from typing import Optional, Set, Tuple

from repro.graphs.dynamic_graph import DynamicGraph


def planted_independent_set_graph(
    num_vertices: int,
    planted_size: int,
    edge_probability: float,
    *,
    seed: Optional[int] = None,
) -> Tuple[DynamicGraph, Set[int]]:
    """Generate a graph with a planted independent set.

    Vertices ``0..planted_size-1`` form the planted set.  Every other vertex
    pair (at least one endpoint outside the planted set) is connected
    independently with probability ``edge_probability``.  To keep the planted
    set maximal, every vertex outside it receives at least one edge into it.

    Returns
    -------
    (graph, planted_set)
    """
    if planted_size > num_vertices:
        raise ValueError("planted_size cannot exceed num_vertices")
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must lie in [0, 1]")
    rng = random.Random(seed)
    graph = DynamicGraph(vertices=range(num_vertices))
    planted = set(range(planted_size))
    for u in range(num_vertices):
        for v in range(u + 1, num_vertices):
            if u in planted and v in planted:
                continue
            if rng.random() < edge_probability:
                graph.add_edge(u, v)
    # Guarantee maximality of the planted set: every outside vertex must have
    # a neighbour inside it.
    for v in range(planted_size, num_vertices):
        if planted_size and not (graph.neighbors(v) & planted):
            graph.add_edge(v, rng.randrange(planted_size))
    return graph, planted


def planted_partition_graph(
    num_groups: int,
    group_size: int,
    intra_probability: float,
    inter_probability: float,
    *,
    seed: Optional[int] = None,
) -> DynamicGraph:
    """Generate a planted-partition (stochastic block model) graph.

    Useful as a "community structured" workload in examples: independent sets
    tend to pick at most a few vertices per dense community.
    """
    rng = random.Random(seed)
    n = num_groups * group_size
    graph = DynamicGraph(vertices=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            same_group = (u // group_size) == (v // group_size)
            p = intra_probability if same_group else inter_probability
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


def disjoint_cliques_graph(num_cliques: int, clique_size: int) -> Tuple[DynamicGraph, int]:
    """Generate a disjoint union of cliques.

    The independence number is exactly ``num_cliques`` (one vertex per
    clique), which makes this family a precise accuracy yardstick.

    Returns
    -------
    (graph, independence_number)
    """
    graph = DynamicGraph()
    vertex = 0
    for _ in range(num_cliques):
        members = list(range(vertex, vertex + clique_size))
        vertex += clique_size
        for v in members:
            graph.add_vertex(v)
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                graph.add_edge(u, v)
    return graph, num_cliques


def caterpillar_graph(spine_length: int, legs_per_vertex: int) -> Tuple[DynamicGraph, int]:
    """Generate a caterpillar tree whose independence number is known.

    A spine path of ``spine_length`` vertices where every spine vertex has
    ``legs_per_vertex`` pendant leaves.  With at least one leg per spine
    vertex, all leaves form a maximum independent set, so
    ``α = spine_length * legs_per_vertex`` (plus alternate spine vertices when
    ``legs_per_vertex == 0``).

    Returns
    -------
    (graph, independence_number)
    """
    graph = DynamicGraph()
    for v in range(spine_length):
        graph.add_vertex_if_missing(v)
        if v > 0:
            graph.add_edge(v - 1, v)
    next_id = spine_length
    for v in range(spine_length):
        for _ in range(legs_per_vertex):
            graph.add_vertex(next_id)
            graph.add_edge(v, next_id)
            next_id += 1
    if legs_per_vertex > 0:
        alpha = spine_length * legs_per_vertex
    else:
        alpha = (spine_length + 1) // 2
    return graph, alpha
