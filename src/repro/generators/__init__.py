"""Synthetic graph generators and the Table I dataset registry."""

from repro.generators.datasets import (
    DatasetSpec,
    LAST_SEVEN_EASY,
    TABLE1_DATASETS,
    dataset_names,
    get_dataset_spec,
    load_dataset,
    load_datasets,
    table1_rows,
)
from repro.generators.planted import (
    caterpillar_graph,
    disjoint_cliques_graph,
    planted_independent_set_graph,
    planted_partition_graph,
)
from repro.generators.power_law import (
    erased_configuration_model,
    plb_graph,
    power_law_degree_sequence,
    power_law_random_graph,
)
from repro.generators.random_graphs import (
    barabasi_albert_graph,
    chung_lu_graph,
    erdos_renyi_graph,
    gnm_random_graph,
    random_bipartite_graph,
    random_regular_graph,
    random_tree,
)
from repro.generators.worst_case import (
    complete_graph,
    flicker_update_stream,
    hypercube_graph,
    subdivide,
    subdivided_complete_graph,
    subdivided_hypercube_graph,
    theorem3_witnesses,
)

__all__ = [
    "DatasetSpec",
    "TABLE1_DATASETS",
    "LAST_SEVEN_EASY",
    "dataset_names",
    "get_dataset_spec",
    "load_dataset",
    "load_datasets",
    "table1_rows",
    "planted_independent_set_graph",
    "planted_partition_graph",
    "disjoint_cliques_graph",
    "caterpillar_graph",
    "power_law_degree_sequence",
    "erased_configuration_model",
    "power_law_random_graph",
    "plb_graph",
    "erdos_renyi_graph",
    "gnm_random_graph",
    "barabasi_albert_graph",
    "chung_lu_graph",
    "random_regular_graph",
    "random_tree",
    "random_bipartite_graph",
    "complete_graph",
    "flicker_update_stream",
    "hypercube_graph",
    "subdivide",
    "subdivided_complete_graph",
    "subdivided_hypercube_graph",
    "theorem3_witnesses",
]
