"""Resilience subsystem: fault injection, artifact integrity, supervised recovery.

Three pillars (see the per-module docstrings):

* :mod:`repro.resilience.faults` — deterministic, seedable fault injection
  at named points threaded through the whole pipeline (stream read,
  coalesce, bulk apply, checkpoint/snapshot write, cache read, fetch);
  zero-overhead no-ops when disabled.
* :mod:`repro.resilience.integrity` — embedded SHA-256 digests for durable
  artifacts, verified on load.
* :mod:`repro.resilience.supervisor` — :func:`supervised_replay`: crash
  detection → recover from the newest *valid* checkpoint (corrupt ones
  quarantined) → capped jittered backoff → a measurement bit-identical to
  an uninterrupted run.

Layering: ``faults`` and ``integrity`` sit *below* the pipeline (only
:mod:`repro.exceptions` beneath them) so every layer can import its fault
hook; the supervisor sits *above* the experiment runner and is therefore
loaded lazily via module ``__getattr__`` — ``from repro.resilience import
supervised_replay`` works, but merely importing a fault point never drags
the runner in (which would cycle).
"""

from __future__ import annotations

from repro.exceptions import (
    InjectedFault,
    IntegrityError,
    RecoveryExhaustedError,
    ResilienceError,
)
from repro.resilience.faults import (
    BULK_APPLY,
    CACHE_READ,
    CHECKPOINT_WRITE,
    COALESCE,
    FAULT_POINTS,
    FETCH,
    SERVICE_INGEST,
    SERVICE_QUERY,
    SERVICE_SHUTDOWN,
    SHARD_APPLY,
    SNAPSHOT_WRITE,
    STREAM_READ,
    FaultInjector,
    FaultPlan,
    FiredFault,
    active,
    inject_faults,
    install,
    trip,
    uninstall,
)
from repro.resilience.integrity import (
    DIGEST_KEY,
    document_digest,
    embed_digest,
    verify_document,
)

#: Supervisor names resolved lazily (importing them eagerly would pull the
#: experiment runner into every module that merely hosts a fault point).
_SUPERVISOR_EXPORTS = (
    "CrashRecord",
    "InvariantGuard",
    "RetryPolicy",
    "SupervisedResult",
    "supervised_replay",
    "RECOVERABLE",
)

__all__ = [
    # exceptions
    "ResilienceError",
    "IntegrityError",
    "RecoveryExhaustedError",
    "InjectedFault",
    # faults
    "FAULT_POINTS",
    "STREAM_READ",
    "COALESCE",
    "BULK_APPLY",
    "CHECKPOINT_WRITE",
    "SNAPSHOT_WRITE",
    "CACHE_READ",
    "FETCH",
    "SHARD_APPLY",
    "SERVICE_INGEST",
    "SERVICE_QUERY",
    "SERVICE_SHUTDOWN",
    "FaultPlan",
    "FaultInjector",
    "FiredFault",
    "inject_faults",
    "install",
    "uninstall",
    "active",
    "trip",
    # integrity
    "DIGEST_KEY",
    "document_digest",
    "embed_digest",
    "verify_document",
    # supervisor (lazy)
    *_SUPERVISOR_EXPORTS,
]


def __getattr__(name: str):
    if name in _SUPERVISOR_EXPORTS:
        from repro.resilience import supervisor

        return getattr(supervisor, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
