"""Seed-pinned crash-simulation smoke check (``python -m repro.resilience.smoke``).

The CI-facing end-to-end proof of the resilience acceptance criterion: a
replay killed repeatedly by injected faults — mid-stream, mid-batch and
mid-checkpoint-write — recovers through :func:`supervised_replay` and
produces a measurement **bit-identical** to the uninterrupted run.  Two
deterministic scenarios run against the quick temporal workload:

1. *Unbatched*: faults planned at two stream-read counts (one of which
   lands inside a resume fast-forward) plus a torn second checkpoint
   write.
2. *Batched*: faults planned at a coalesce pass, a bulk-apply pass and a
   checkpoint write, with the invariant guard verifying k-maximality at
   chunk boundaries.
3. *Sharded*: the batched workload run through the parallel engine
   (``workers=2``), with a ``shard.apply`` drill — the planned fault is
   converted into a ``SIGKILL`` of a live shard worker mid-batch — plus a
   torn checkpoint write.  The recovered sharded measurement must be
   bit-identical to the uninterrupted *single-process* reference: worker
   crashes degrade a batch to local recompute, never change its result.

Everything is pinned — fault plans, workload seed, retry policy (zero
backoff, so the smoke check costs CI no sleeping) — making a failure here
a reproducible regression, not flake.  Exit code 0 on success.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.resilience.faults import (
    BULK_APPLY,
    CHECKPOINT_WRITE,
    COALESCE,
    SHARD_APPLY,
    STREAM_READ,
    FaultPlan,
    inject_faults,
)
from repro.resilience.supervisor import RetryPolicy, supervised_replay

#: No-backoff policy: smoke runs recover instantly (determinism does not
#: need the delays; production defaults do back off).
_RETRY = RetryPolicy(max_attempts=8, base_delay=0.0, cap=0.0)


def _fingerprint(measurement):
    """The bit-identity fields (elapsed wall-clock legitimately differs)."""
    return (
        measurement.num_updates,
        measurement.initial_size,
        measurement.final_size,
        measurement.memory_footprint,
        measurement.finished,
        measurement.extra,
    )


def _scenario(
    name,
    graph,
    stream,
    plan,
    workdir,
    reference,
    require_points=(),
    **run_options,
):
    """One crash-simulation scenario; returns the failure message or ``None``."""
    from repro.workloads.replay import CheckpointConfig

    checkpoint = CheckpointConfig(
        directory=workdir, every=run_options.pop("every", 64)
    )
    with inject_faults(plan) as injector:
        result = supervised_replay(
            "DyOneSwap",
            graph,
            stream,
            dataset="smoke",
            checkpoint=checkpoint,
            retry=_RETRY,
            **run_options,
        )
    fired = [(f.point, f.hit) for f in injector.fired]
    print(f"  {name}: {plan.describe()}")
    print(
        f"  {name}: {len(fired)} faults fired {fired}, "
        f"{result.attempts} attempts, {len(result.crashes)} crashes absorbed"
    )
    if not fired:
        return f"{name}: no planned fault fired — the scenario tested nothing"
    fired_points = {point for point, _hit in fired}
    for point in require_points:
        if point not in fired_points:
            return (
                f"{name}: required fault point {point!r} never fired — "
                f"the scenario tested nothing at it"
            )
    if not result.recovered:
        return f"{name}: no crash was absorbed — the scenario tested nothing"
    if _fingerprint(result.measurement) != _fingerprint(reference):
        return (
            f"{name}: recovered measurement diverges from the uninterrupted "
            f"run: {_fingerprint(result.measurement)} != "
            f"{_fingerprint(reference)}"
        )
    return None


def main(argv=None) -> int:
    del argv  # the smoke check is deliberately parameterless: pinned or nothing
    from repro.experiments import load_temporal_workload, run_algorithm
    from repro.workloads.replay import CheckpointConfig

    print("resilience smoke: seed-pinned crash-simulation replay")
    graph, stream = load_temporal_workload(
        "quick", "wiki-talk-window", num_events=260
    )
    failures = []
    with tempfile.TemporaryDirectory(prefix="resilience-smoke-") as tmp:
        tmp = Path(tmp)
        reference = run_algorithm(
            "DyOneSwap",
            graph,
            stream,
            dataset="smoke",
            checkpoint=CheckpointConfig(directory=tmp / "ref", every=64),
        )
        # Scenario 1 — unbatched: the second stream-read fault lands inside
        # a resume fast-forward, the checkpoint fault tears the second
        # write mid-payload (the commit aborts; the older checkpoint
        # carries the recovery).
        failure = _scenario(
            "unbatched",
            graph,
            stream,
            FaultPlan.union(
                FaultPlan.at(STREAM_READ, 57, 211),
                FaultPlan.at(CHECKPOINT_WRITE, 2),
            ),
            tmp / "s1",
            reference,
        )
        if failure:
            failures.append(failure)
        reference_batched = run_algorithm(
            "DyOneSwap",
            graph,
            stream,
            dataset="smoke",
            batch_size=64,
            checkpoint=CheckpointConfig(directory=tmp / "ref-batched", every=128),
        )
        # Scenario 2 — batched, with the invariant guard re-verifying
        # k-maximality from first principles at chunk boundaries.
        failure = _scenario(
            "batched",
            graph,
            stream,
            FaultPlan.union(
                FaultPlan.at(COALESCE, 2),
                FaultPlan.at(BULK_APPLY, 5),
                FaultPlan.at(CHECKPOINT_WRITE, 1),
            ),
            tmp / "s2",
            reference_batched,
            batch_size=64,
            every=128,
            verify_every=128,
        )
        if failure:
            failures.append(failure)
        # Scenario 3 — sharded: the same batched workload through the
        # parallel engine; the shard.apply drill SIGKILLs a live worker
        # mid-batch and the torn write crashes the coordinator, yet the
        # recovered measurement must match the single-process reference.
        failure = _scenario(
            "sharded",
            graph,
            stream,
            FaultPlan.union(
                FaultPlan.at(SHARD_APPLY, 2),
                FaultPlan.at(CHECKPOINT_WRITE, 1),
            ),
            tmp / "s3",
            reference_batched,
            require_points=(SHARD_APPLY,),
            batch_size=64,
            every=128,
            workers=2,
        )
        if failure:
            failures.append(failure)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("resilience smoke: OK (recovered runs bit-identical to uninterrupted)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
