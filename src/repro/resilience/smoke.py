"""Seed-pinned crash-simulation smoke check (``python -m repro.resilience.smoke``).

The CI-facing end-to-end proof of the resilience acceptance criterion: a
replay killed repeatedly by injected faults — mid-stream, mid-batch and
mid-checkpoint-write — recovers through :func:`supervised_replay` and
produces a measurement **bit-identical** to the uninterrupted run.  Two
deterministic scenarios run against the quick temporal workload:

1. *Unbatched*: faults planned at two stream-read counts (one of which
   lands inside a resume fast-forward) plus a torn second checkpoint
   write.
2. *Batched*: faults planned at a coalesce pass, a bulk-apply pass and a
   checkpoint write, with the invariant guard verifying k-maximality at
   chunk boundaries.
3. *Sharded*: the batched workload run through the parallel engine
   (``workers=2``), with a ``shard.apply`` drill — the planned fault is
   converted into a ``SIGKILL`` of a live shard worker mid-batch — plus a
   torn checkpoint write.  The recovered sharded measurement must be
   bit-identical to the uninterrupted *single-process* reference: worker
   crashes degrade a batch to local recompute, never change its result.
4. *Service*: the same workload ingested through a live in-process
   gateway (:mod:`repro.service`) over a real Unix socket, with faults at
   every service point — a rejected ingest admission, a degraded query, a
   mid-batch engine crash (supervised tenant restart with replay-buffer
   recovery), a torn checkpoint write and an injected crash during the
   shutdown drain.  The client retries degraded replies; the drained
   tenant's engine digest must equal an uninterrupted in-process run with
   the same batch boundaries, and the final checkpoint must verify.

Everything is pinned — fault plans, workload seed, retry policy (zero
backoff, so the smoke check costs CI no sleeping) — making a failure here
a reproducible regression, not flake.  Exit code 0 on success.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.resilience.faults import (
    BULK_APPLY,
    CHECKPOINT_WRITE,
    COALESCE,
    SERVICE_INGEST,
    SERVICE_QUERY,
    SERVICE_SHUTDOWN,
    SHARD_APPLY,
    STREAM_READ,
    FaultPlan,
    inject_faults,
)
from repro.resilience.supervisor import RetryPolicy, supervised_replay

#: No-backoff policy: smoke runs recover instantly (determinism does not
#: need the delays; production defaults do back off).
_RETRY = RetryPolicy(max_attempts=8, base_delay=0.0, cap=0.0)


def _fingerprint(measurement):
    """The bit-identity fields (elapsed wall-clock legitimately differs)."""
    return (
        measurement.num_updates,
        measurement.initial_size,
        measurement.final_size,
        measurement.memory_footprint,
        measurement.finished,
        measurement.extra,
    )


def _scenario(
    name,
    graph,
    stream,
    plan,
    workdir,
    reference,
    require_points=(),
    **run_options,
):
    """One crash-simulation scenario; returns the failure message or ``None``."""
    from repro.workloads.replay import CheckpointConfig

    checkpoint = CheckpointConfig(
        directory=workdir, every=run_options.pop("every", 64)
    )
    with inject_faults(plan) as injector:
        result = supervised_replay(
            "DyOneSwap",
            graph,
            stream,
            dataset="smoke",
            checkpoint=checkpoint,
            retry=_RETRY,
            **run_options,
        )
    fired = [(f.point, f.hit) for f in injector.fired]
    print(f"  {name}: {plan.describe()}")
    print(
        f"  {name}: {len(fired)} faults fired {fired}, "
        f"{result.attempts} attempts, {len(result.crashes)} crashes absorbed"
    )
    if not fired:
        return f"{name}: no planned fault fired — the scenario tested nothing"
    fired_points = {point for point, _hit in fired}
    for point in require_points:
        if point not in fired_points:
            return (
                f"{name}: required fault point {point!r} never fired — "
                f"the scenario tested nothing at it"
            )
    if not result.recovered:
        return f"{name}: no crash was absorbed — the scenario tested nothing"
    if _fingerprint(result.measurement) != _fingerprint(reference):
        return (
            f"{name}: recovered measurement diverges from the uninterrupted "
            f"run: {_fingerprint(result.measurement)} != "
            f"{_fingerprint(reference)}"
        )
    return None


def _service_scenario(name, operations, workdir) -> "str | None":
    """Fault-injected in-process gateway vs an uninterrupted reference.

    Exercises every ``service.*`` fault point plus a mid-batch engine crash
    and a torn checkpoint write, over a real Unix-socket round-trip.
    Returns the failure message or ``None``.
    """
    from repro.experiments.runner import create_algorithm, release_engine
    from repro.graphs.dynamic_graph import DynamicGraph
    from repro.service import ServiceConfig, ServiceThread, TenantSpec
    from repro.service.tenant import engine_digest
    from repro.updates.protocol import chunked
    from repro.workloads.replay import latest_valid_checkpoint, load_checkpoint

    batch = 64
    # Reference first, outside the injector: uninterrupted, same boundaries.
    reference_engine = create_algorithm("DyOneSwap", DynamicGraph(), None)
    try:
        for group in chunked(iter(operations), batch):
            reference_engine.apply_batch(group, coalesce=True)
        expected_digest = engine_digest(reference_engine)
    finally:
        release_engine(reference_engine)
    plan = FaultPlan.union(
        FaultPlan.at(SERVICE_INGEST, 2),
        FaultPlan.at(SERVICE_QUERY, 1),
        FaultPlan.at(BULK_APPLY, 3),
        FaultPlan.at(CHECKPOINT_WRITE, 2),
        FaultPlan.at(SERVICE_SHUTDOWN, 1),
    )
    config = ServiceConfig(
        data_dir=str(workdir / "data"),
        unix_socket=str(workdir / "service.sock"),
        tenants=(
            TenantSpec(
                name="svc",
                batch_size=batch,
                window_max=batch * 4,
                adaptive=False,
                checkpoint_every=batch * 2,
            ),
        ),
        retry=_RETRY,
    )
    with inject_faults(plan) as injector:
        with ServiceThread(config) as service:
            with service.client() as client:
                # ingest_stream retries the injected admission rejection.
                client.ingest_stream("svc", operations, chunk=batch)
                query = client.query("svc", 0)
                query_retries = 0
                while not query.get("ok") and query_retries < 5:
                    query_retries += 1  # the degraded (injected) reply
                    query = client.query("svc", 0)
                digest_reply = client.digest("svc")
        report = service.report
    fired = [(f.point, f.hit) for f in injector.fired]
    print(f"  {name}: {plan.describe()}")
    print(f"  {name}: {len(fired)} faults fired {fired}")
    fired_points = {point for point, _hit in fired}
    for point in (
        SERVICE_INGEST,
        SERVICE_QUERY,
        SERVICE_SHUTDOWN,
        BULK_APPLY,
        CHECKPOINT_WRITE,
    ):
        if point not in fired_points:
            return (
                f"{name}: required fault point {point!r} never fired — "
                f"the scenario tested nothing at it"
            )
    if not query.get("ok"):
        return f"{name}: query never recovered from the injected fault: {query}"
    if not digest_reply.get("ok"):
        return f"{name}: digest request failed: {digest_reply}"
    if digest_reply["digest"] != expected_digest:
        return (
            f"{name}: drained engine digest diverges from the uninterrupted "
            f"run ({digest_reply['digest'][:16]}… != {expected_digest[:16]}…)"
        )
    if report is None or not report.clean:
        return f"{name}: shutdown drain was not clean: {report}"
    final = latest_valid_checkpoint(workdir / "data" / "svc", "DyOneSwap")
    if final is None:
        return f"{name}: drain left no valid final checkpoint"
    if load_checkpoint(final).processed != len(operations):
        return f"{name}: final checkpoint does not cover the whole stream"
    return None


def main(argv=None) -> int:
    del argv  # the smoke check is deliberately parameterless: pinned or nothing
    from repro.experiments import load_temporal_workload, run_algorithm
    from repro.workloads.replay import CheckpointConfig

    print("resilience smoke: seed-pinned crash-simulation replay")
    graph, stream = load_temporal_workload(
        "quick", "wiki-talk-window", num_events=260
    )
    failures = []
    with tempfile.TemporaryDirectory(prefix="resilience-smoke-") as tmp:
        tmp = Path(tmp)
        reference = run_algorithm(
            "DyOneSwap",
            graph,
            stream,
            dataset="smoke",
            checkpoint=CheckpointConfig(directory=tmp / "ref", every=64),
        )
        # Scenario 1 — unbatched: the second stream-read fault lands inside
        # a resume fast-forward, the checkpoint fault tears the second
        # write mid-payload (the commit aborts; the older checkpoint
        # carries the recovery).
        failure = _scenario(
            "unbatched",
            graph,
            stream,
            FaultPlan.union(
                FaultPlan.at(STREAM_READ, 57, 211),
                FaultPlan.at(CHECKPOINT_WRITE, 2),
            ),
            tmp / "s1",
            reference,
        )
        if failure:
            failures.append(failure)
        reference_batched = run_algorithm(
            "DyOneSwap",
            graph,
            stream,
            dataset="smoke",
            batch_size=64,
            checkpoint=CheckpointConfig(directory=tmp / "ref-batched", every=128),
        )
        # Scenario 2 — batched, with the invariant guard re-verifying
        # k-maximality from first principles at chunk boundaries.
        failure = _scenario(
            "batched",
            graph,
            stream,
            FaultPlan.union(
                FaultPlan.at(COALESCE, 2),
                FaultPlan.at(BULK_APPLY, 5),
                FaultPlan.at(CHECKPOINT_WRITE, 1),
            ),
            tmp / "s2",
            reference_batched,
            batch_size=64,
            every=128,
            verify_every=128,
        )
        if failure:
            failures.append(failure)
        # Scenario 3 — sharded: the same batched workload through the
        # parallel engine; the shard.apply drill SIGKILLs a live worker
        # mid-batch and the torn write crashes the coordinator, yet the
        # recovered measurement must match the single-process reference.
        failure = _scenario(
            "sharded",
            graph,
            stream,
            FaultPlan.union(
                FaultPlan.at(SHARD_APPLY, 2),
                FaultPlan.at(CHECKPOINT_WRITE, 1),
            ),
            tmp / "s3",
            reference_batched,
            require_points=(SHARD_APPLY,),
            batch_size=64,
            every=128,
            workers=2,
        )
        if failure:
            failures.append(failure)
        # Scenario 4 — the always-on service layer: the same operations
        # ingested through a live gateway over a Unix socket, with faults
        # at admission, query, batch apply, checkpoint write and the
        # shutdown drain.
        failure = _service_scenario("service", list(stream), tmp / "s4")
        if failure:
            failures.append(failure)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("resilience smoke: OK (recovered runs bit-identical to uninterrupted)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
