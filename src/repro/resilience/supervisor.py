"""Supervised crash-recovery replay: run, crash, recover, converge.

:func:`supervised_replay` wraps :func:`~repro.experiments.runner.run_algorithm`
in a supervision loop: when a run crashes (an injected fault, an I/O error,
a failed artifact-integrity check), the supervisor recovers from the newest
*valid* checkpoint — corrupt or torn checkpoints are quarantined by
:func:`~repro.workloads.replay.latest_valid_checkpoint`, never loaded —
waits out a capped exponential backoff with deterministic jitter
(:class:`RetryPolicy`), and tries again.  Because checkpoint resume is
bit-exact (the library's regression-pinned property), the final
:class:`~repro.experiments.metrics.RunMeasurement` of a supervised run that
crashed arbitrarily often is identical to an uninterrupted run's.

An optional invariant guard (``verify_every=``) re-verifies solution
independence and k-maximality from first principles
(:mod:`repro.core.verification`) at checkpoint-chunk boundaries, outside
the measured update time, with a repair-or-abort degradation policy
(:class:`InvariantGuard`): ``"repair"`` re-stabilises the solution and only
aborts if the violation survives, ``"abort"`` raises immediately.

The module is imported lazily by :mod:`repro.resilience` (it pulls in the
experiment runner, which sits above the layers that host the fault points).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from repro.exceptions import (
    ExperimentError,
    InjectedFault,
    IntegrityError,
    RecoveryExhaustedError,
    SolutionInvariantError,
)
from repro.experiments.metrics import RunMeasurement

#: Exception types the supervisor treats as recoverable crashes by default:
#: injected faults (the crash simulation), raw I/O failures, and artifact
#: integrity violations (the artifact is quarantined; an older one or a
#: fresh start is always available).  Configuration errors
#: (:class:`~repro.exceptions.ExperimentError`) and genuine algorithm bugs
#: deliberately stay fatal — retrying them would loop forever.
RECOVERABLE: Tuple[type, ...] = (InjectedFault, OSError, IntegrityError)


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    Attempt ``n`` (1-based, i.e. after the ``n``-th crash) waits
    ``min(cap, base_delay * 2**(n-1))`` scaled by a jitter factor in
    ``[0.5, 1.0]`` drawn from ``random.Random((seed, n))`` — deterministic
    for a given policy, so supervised runs are as reproducible as everything
    else in this library, while distinct seeds still de-synchronise fleets
    of retrying workers.
    """

    max_attempts: int = 5
    base_delay: float = 0.05
    cap: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ExperimentError("RetryPolicy.max_attempts must be at least 1")
        if self.base_delay < 0 or self.cap < 0:
            raise ExperimentError("RetryPolicy delays must be non-negative")

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based), jittered."""
        raw = min(self.cap, self.base_delay * (2 ** (attempt - 1)))
        # One throwaway PRNG per (seed, attempt): the jitter is a pure
        # function of the policy, never of global random state.
        jitter = 0.5 + random.Random(self.seed * 1_000_003 + attempt).random() / 2
        return raw * jitter


@dataclass(frozen=True)
class CrashRecord:
    """One supervised crash: which attempt, what died, where it had resumed from."""

    attempt: int
    error: str
    resumed_from: Optional[str]


@dataclass(frozen=True)
class SupervisedResult:
    """Outcome of a :func:`supervised_replay` that eventually converged."""

    measurement: RunMeasurement
    attempts: int
    crashes: Tuple[CrashRecord, ...] = ()

    @property
    def recovered(self) -> bool:
        """Whether any crash was absorbed on the way to the result."""
        return bool(self.crashes)


class InvariantGuard:
    """Verify solution invariants from first principles, repair or abort.

    Called with the live algorithm at checkpoint-chunk boundaries (where
    the candidate queues are drained and the solution is supposed to be
    k-maximal).  Verification goes through :mod:`repro.core.verification`
    — straight graph scans sharing no code with the maintenance engine, so
    a bookkeeping bug cannot vouch for itself.  On a violation the
    ``"repair"`` policy re-stabilises the engine (re-registering candidates
    and draining the queues) and re-verifies, aborting only if the
    violation survives; ``"abort"`` raises
    :class:`~repro.exceptions.SolutionInvariantError` immediately.
    """

    def __init__(self, on_violation: str = "repair") -> None:
        if on_violation not in ("repair", "abort"):
            raise ExperimentError(
                f"on_violation must be 'repair' or 'abort', got {on_violation!r}"
            )
        self.on_violation = on_violation
        self.checks = 0
        self.violations = 0
        self.repairs = 0

    def _verify(self, algorithm) -> bool:
        from repro.core.verification import is_k_maximal_independent_set

        # Swap depth capped at 1: the exhaustive j-swap search is
        # exponential in j (it exists for small test graphs), while
        # maximality plus 1-swap-freeness is polynomial and is the
        # invariant every maintainer guarantees at a batch boundary.
        return is_k_maximal_independent_set(
            algorithm.graph, algorithm.solution(), min(algorithm.k, 1)
        )

    def __call__(self, algorithm) -> None:
        self.checks += 1
        if self._verify(algorithm):
            return
        self.violations += 1
        if self.on_violation == "abort":
            raise SolutionInvariantError(
                "invariant guard: solution is not a k-maximal independent "
                "set at a batch boundary (policy 'abort')"
            )
        stabilize = getattr(algorithm, "_stabilize", None)
        if stabilize is not None:
            stabilize()
            if self._verify(algorithm):
                self.repairs += 1
                return
        raise SolutionInvariantError(
            "invariant guard: solution is not a k-maximal independent set "
            "at a batch boundary and could not be repaired"
        )


def supervised_replay(
    name: str,
    graph,
    stream,
    *,
    checkpoint,
    dataset: str = "",
    retry: Optional[RetryPolicy] = None,
    verify_every: Optional[int] = None,
    on_violation: str = "repair",
    recoverable: Tuple[type, ...] = RECOVERABLE,
    sleep: Callable[[float], None] = time.sleep,
    **run_options,
) -> SupervisedResult:
    """Run ``run_algorithm`` under supervision: crash, recover, retry, converge.

    Parameters
    ----------
    checkpoint:
        A :class:`~repro.workloads.replay.CheckpointConfig` (required —
        recovery without durable state would restart from zero and a
        deterministic fault would kill it at the same spot forever).
    retry:
        The :class:`RetryPolicy`; defaults to 5 attempts with 50 ms base
        backoff.  Every retry resumes from the newest *valid* checkpoint —
        corrupt ones are quarantined and skipped — or from scratch when
        none survives.
    verify_every:
        When set, an :class:`InvariantGuard` re-verifies solution
        independence and k-maximality about every ``verify_every``
        operations (at checkpoint-chunk boundaries, outside the measured
        time), degrading per ``on_violation`` (``"repair"`` or ``"abort"``).
    recoverable:
        Exception types treated as crashes to recover from; everything else
        propagates immediately.
    sleep:
        Injectable for tests — the backoff delays are real seconds
        otherwise.
    run_options:
        Forwarded to :func:`~repro.experiments.runner.run_algorithm`
        (``batch_size``, ``time_limit_seconds``, algorithm options, ...).

    Returns
    -------
    SupervisedResult
        With a ``measurement`` bit-identical to an uninterrupted run's and
        the :class:`CrashRecord` history of every absorbed crash.

    Raises
    ------
    RecoveryExhaustedError
        After ``retry.max_attempts`` crashed attempts; carries the crash
        history.
    """
    # Imported here, not at module top: the runner sits above every layer
    # hosting a fault point, and repro.resilience must stay importable from
    # those layers without cycling back through the runner.
    from repro.experiments.runner import run_algorithm
    from repro.workloads.replay import CheckpointConfig, latest_valid_checkpoint

    if not isinstance(checkpoint, CheckpointConfig):
        raise ExperimentError(
            "supervised_replay requires checkpoint=CheckpointConfig(...): "
            "recovery needs durable state to recover *from*"
        )
    policy = retry if retry is not None else RetryPolicy()
    guard = InvariantGuard(on_violation) if verify_every is not None else None
    crashes = []
    for attempt in range(1, policy.max_attempts + 1):
        resume_from = latest_valid_checkpoint(checkpoint.directory, name)
        try:
            measurement = run_algorithm(
                name,
                graph,
                stream,
                dataset=dataset,
                checkpoint=checkpoint,
                resume_from=resume_from,
                guard=guard,
                guard_every=verify_every,
                **run_options,
            )
        except recoverable as exc:
            crashes.append(
                CrashRecord(
                    attempt=attempt,
                    error=repr(exc),
                    resumed_from=None if resume_from is None else str(resume_from),
                )
            )
            if attempt >= policy.max_attempts:
                raise RecoveryExhaustedError(
                    f"supervised replay of {name!r} crashed on every one of "
                    f"its {policy.max_attempts} attempts; last error: {exc!r}",
                    attempts=attempt,
                    history=tuple(crashes),
                ) from exc
            sleep(policy.delay(attempt))
            continue
        return SupervisedResult(
            measurement=measurement,
            attempts=attempt,
            crashes=tuple(crashes),
        )
    raise AssertionError("unreachable: the loop either returns or raises")
