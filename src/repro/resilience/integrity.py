"""Embedded SHA-256 digests for durable artifacts.

Checkpoints, snapshots and stream-cache entries are JSON documents written
atomically (temp file + fsync + rename), which protects against *torn*
writes — but nothing previously protected against the bytes changing
*after* the write: bit rot, truncation by an external tool, a well-meaning
editor, or a crash in a filesystem without rename barriers.  Replaying a
corrupt checkpoint silently poisons every downstream measurement, so in
the spirit of error-detecting codes each artifact now carries enough
redundancy to *detect* corruption on load.

The scheme is deliberately minimal: the digest of a document is the
SHA-256 of its canonical JSON serialisation (sorted keys, no whitespace)
**excluding** the digest field itself.  :func:`embed_digest` stamps it,
:func:`verify_document` checks it and raises
:class:`~repro.exceptions.IntegrityError` on mismatch.  Canonical
serialisation makes the digest independent of key order and formatting,
so re-writing an artifact with a different JSON encoder does not
invalidate it — only changing the *data* does.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional

from repro.exceptions import IntegrityError

#: Key under which the digest is embedded in artifact documents.
DIGEST_KEY = "sha256"


def canonical_bytes(document: Dict[str, Any]) -> bytes:
    """The canonical serialisation of ``document`` (digest field excluded)."""
    body = {key: value for key, value in document.items() if key != DIGEST_KEY}
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")


def document_digest(document: Dict[str, Any]) -> str:
    """Hex SHA-256 of the canonical serialisation of ``document``."""
    return hashlib.sha256(canonical_bytes(document)).hexdigest()


def embed_digest(document: Dict[str, Any]) -> Dict[str, Any]:
    """Return ``document`` with its digest embedded under :data:`DIGEST_KEY`."""
    document[DIGEST_KEY] = document_digest(document)
    return document


def verify_document(
    document: Dict[str, Any],
    *,
    source: Optional[object] = None,
    required: bool = True,
) -> Dict[str, Any]:
    """Check the embedded digest of ``document``; raise on absence or mismatch.

    With ``required=False`` a document without a digest passes (for formats
    whose older versions predate integrity stamping); a *present but wrong*
    digest always raises.
    """
    stored = document.get(DIGEST_KEY)
    if stored is None:
        if required:
            raise IntegrityError(
                "artifact carries no integrity digest"
                + (f" ({source})" if source is not None else ""),
                source=source,
            )
        return document
    actual = document_digest(document)
    if stored != actual:
        raise IntegrityError(
            "artifact failed its integrity check: stored digest "
            f"{stored!r} != computed {actual!r}"
            + (f" ({source})" if source is not None else ""),
            source=source,
        )
    return document
