"""Deterministic fault injection for the update pipeline.

Crash-recovery code is only trustworthy if crashes are *reproducible*: a
fuzz harness that kills the pipeline at a random C-level moment cannot
assert anything about the recovered state.  This module instead defines a
small set of **named fault points** threaded through the pipeline —

========================  ====================================================
point                     where it fires
========================  ====================================================
``stream.read``           :class:`~repro.updates.protocol.StreamCursor`
                          (once per operation consumed through a cursor)
``coalesce``              :func:`~repro.updates.coalesce.coalesce_batch`
                          (once per batch, before simulation)
``bulk_apply``            :meth:`~repro.core.base.DynamicMISBase.apply_batch`
                          (once per batch, before any state mutation)
``checkpoint.write``      :func:`~repro.workloads.replay.save_checkpoint`
                          (inside the atomic write, after the payload bytes —
                          the torn-write scenario; the commit is aborted)
``snapshot.write``        :func:`~repro.workloads.snapshot.save_snapshot`
                          (same position as ``checkpoint.write``)
``cache.read``            :class:`~repro.workloads.temporal.CachedOperationStream`
                          (once per chunk line decoded)
``fetch``                 :func:`~repro.experiments.fetch.fetch_file`
                          (once per network chunk received)
``shard.apply``           :meth:`~repro.core.sharded.ShardedEngine.apply_batch`
                          (once per parallel batch, before dispatch; the
                          engine converts the fault into a SIGKILL of one
                          live shard worker — the worker-crash drill)
``service.ingest``        :meth:`~repro.service.tenant.Tenant.offer`
                          (once per ingest request, before admission; the
                          gateway degrades it to an ``injected-fault`` error
                          reply — the connection and the tenant survive)
``service.query``         the gateway's query dispatch
                          (once per membership/solution query; degraded to
                          an error reply like ``service.ingest``)
``service.shutdown``      :meth:`~repro.service.tenant.Tenant.drain`
                          (once per tenant drain, before the final
                          checkpoint; the gateway retries the drain under
                          its retry policy, so graceful shutdown still
                          flushes and closes)
========================  ====================================================

— and a seedable :class:`FaultPlan` that says *at which traversal counts*
each point raises :class:`~repro.exceptions.InjectedFault`.  The same plan
against the same workload crashes at exactly the same operation, so the
recovery path can be asserted bit-for-bit against an uninterrupted run.

When no injector is installed (the production state) every fault point is a
single module-global ``is None`` check — the hook sits only on batch/chunk/
I/O granularity paths plus the (already hashing) checkpoint cursor, never
inside the per-operation maintenance hot loop, so the disabled overhead is
unmeasurable on the core benchmarks.

Usage::

    plan = FaultPlan.at(CHECKPOINT_WRITE, 2)          # kill the 2nd write
    with inject_faults(plan) as injector:
        ...                                            # pipeline crashes
    assert injector.fired[0].point == CHECKPOINT_WRITE

Hit counters persist across retries within one ``inject_faults`` block:
a planned hit fires exactly once, so a supervised re-run sails past the
fault it already absorbed — precisely the transient-fault model crash
recovery is built for.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import InjectedFault, ResilienceError

#: The named fault points threaded through the pipeline.
STREAM_READ = "stream.read"
COALESCE = "coalesce"
BULK_APPLY = "bulk_apply"
CHECKPOINT_WRITE = "checkpoint.write"
SNAPSHOT_WRITE = "snapshot.write"
CACHE_READ = "cache.read"
FETCH = "fetch"
SHARD_APPLY = "shard.apply"
SERVICE_INGEST = "service.ingest"
SERVICE_QUERY = "service.query"
SERVICE_SHUTDOWN = "service.shutdown"

FAULT_POINTS: FrozenSet[str] = frozenset(
    (
        STREAM_READ,
        COALESCE,
        BULK_APPLY,
        CHECKPOINT_WRITE,
        SNAPSHOT_WRITE,
        CACHE_READ,
        FETCH,
        SHARD_APPLY,
        SERVICE_INGEST,
        SERVICE_QUERY,
        SERVICE_SHUTDOWN,
    )
)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule: fault point → 1-based hit counts that raise.

    Immutable and seed-reproducible; build one with :meth:`at` (explicit
    hits) or :meth:`random` (a seeded spread over the whole point set, for
    fuzzing).  Plans are data, not state — the per-run counters live on the
    :class:`FaultInjector`.
    """

    schedule: Mapping[str, FrozenSet[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for point, hits in self.schedule.items():
            if point not in FAULT_POINTS:
                raise ResilienceError(
                    f"unknown fault point {point!r}; known: {sorted(FAULT_POINTS)}"
                )
            for hit in hits:
                if not isinstance(hit, int) or hit < 1:
                    raise ResilienceError(
                        f"fault hits are 1-based operation counts, got {hit!r} "
                        f"for point {point!r}"
                    )

    @classmethod
    def at(cls, point: str, *hits: int) -> "FaultPlan":
        """A plan firing ``point`` at exactly the given traversal counts."""
        return cls(schedule={point: frozenset(hits)})

    @classmethod
    def union(cls, *plans: "FaultPlan") -> "FaultPlan":
        """Merge several plans (hit sets of shared points are united)."""
        merged: Dict[str, set] = {}
        for plan in plans:
            for point, hits in plan.schedule.items():
                merged.setdefault(point, set()).update(hits)
        return cls(
            schedule={point: frozenset(hits) for point, hits in merged.items()}
        )

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        faults: int = 3,
        horizon: int = 1000,
        points: Sequence[str] = tuple(sorted(FAULT_POINTS)),
    ) -> "FaultPlan":
        """A seeded plan of ``faults`` (point, hit) pairs with hits in ``[1, horizon]``.

        Deterministic for a given ``(seed, faults, horizon, points)`` — the
        crash-simulation fuzz harness derives arbitrary kill schedules from a
        single pinned seed.
        """
        if faults < 1:
            raise ResilienceError("a random plan needs at least one fault")
        if horizon < 1:
            raise ResilienceError("the fault horizon must be at least 1")
        for point in points:
            if point not in FAULT_POINTS:
                raise ResilienceError(
                    f"unknown fault point {point!r}; known: {sorted(FAULT_POINTS)}"
                )
        rng = random.Random(seed)
        schedule: Dict[str, set] = {}
        for _ in range(faults):
            point = points[rng.randrange(len(points))]
            schedule.setdefault(point, set()).add(rng.randint(1, horizon))
        return cls(
            schedule={point: frozenset(hits) for point, hits in schedule.items()}
        )

    @property
    def num_faults(self) -> int:
        return sum(len(hits) for hits in self.schedule.values())

    def describe(self) -> str:
        """Human-readable schedule, point-sorted (for logs and CI output)."""
        parts = [
            f"{point}@{sorted(hits)}"
            for point, hits in sorted(self.schedule.items())
        ]
        return "FaultPlan(" + ", ".join(parts) + ")" if parts else "FaultPlan(empty)"


@dataclass(frozen=True)
class FiredFault:
    """A record of one injected fault, kept by the injector for assertions."""

    point: str
    hit: int


class FaultInjector:
    """Counts fault-point traversals and raises at the planned hits.

    One injector = one crash-simulation session: counters survive pipeline
    restarts inside the session (each planned hit fires exactly once), and
    :attr:`fired` records every fault actually raised, in order.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.hits: Dict[str, int] = {point: 0 for point in FAULT_POINTS}
        self.fired: List[FiredFault] = []

    def check(self, point: str) -> None:
        """Count one traversal of ``point``; raise if the plan says so."""
        count = self.hits[point] + 1
        self.hits[point] = count
        if count in self.plan.schedule.get(point, ()):
            self.fired.append(FiredFault(point, count))
            raise InjectedFault(point, count)

    def pending(self) -> Dict[str, Tuple[int, ...]]:
        """Planned hits that have not fired yet (points past their counter drop out)."""
        remaining: Dict[str, Tuple[int, ...]] = {}
        for point, hits in self.plan.schedule.items():
            left = tuple(sorted(h for h in hits if h > self.hits[point]))
            if left:
                remaining[point] = left
        return remaining


#: The installed injector; ``None`` (the default) makes every fault point a
#: no-op behind a single ``is None`` check.
_ACTIVE: Optional[FaultInjector] = None


def active() -> Optional[FaultInjector]:
    """The currently installed injector, or ``None``."""
    return _ACTIVE


def install(plan_or_injector) -> FaultInjector:
    """Install a fault injector globally (one at a time; see :func:`inject_faults`)."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise ResilienceError(
            "a fault injector is already installed; nest fault plans by "
            "building one merged FaultPlan.union(...) instead"
        )
    injector = (
        plan_or_injector
        if isinstance(plan_or_injector, FaultInjector)
        else FaultInjector(plan_or_injector)
    )
    _ACTIVE = injector
    return injector


def uninstall() -> None:
    """Remove the installed injector (idempotent)."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def inject_faults(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Context manager: install ``plan``, yield the injector, always uninstall."""
    injector = install(plan)
    try:
        yield injector
    finally:
        uninstall()


def trip(point: str) -> None:
    """The fault-point hook the pipeline calls; no-op unless an injector is installed."""
    if _ACTIVE is not None:
        _ACTIVE.check(point)
