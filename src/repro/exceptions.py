"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish graph-structure errors from algorithm-state errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(ReproError):
    """Base class for errors related to graph structure manipulation."""


class VertexNotFoundError(GraphError, KeyError):
    """Raised when an operation references a vertex that is not in the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class VertexExistsError(GraphError, ValueError):
    """Raised when inserting a vertex that already exists."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} already exists in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError, KeyError):
    """Raised when an operation references an edge that is not in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.edge = (u, v)


class EdgeExistsError(GraphError, ValueError):
    """Raised when inserting an edge that already exists."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) already exists in the graph")
        self.edge = (u, v)


class SelfLoopError(GraphError, ValueError):
    """Raised when inserting a self loop, which independent-set algorithms forbid."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"self loop on vertex {vertex!r} is not allowed")
        self.vertex = vertex


class AlgorithmError(ReproError):
    """Base class for errors raised by maintenance algorithms."""


class SolutionInvariantError(AlgorithmError):
    """Raised when an internal solution invariant is found to be violated.

    The maintenance algorithms can optionally run in a checked mode in which
    independence, maximality and bookkeeping invariants are verified after
    every update.  A violation indicates a bug and is reported through this
    exception rather than silently producing a wrong solution.
    """


class UpdateError(ReproError):
    """Raised when an update operation cannot be applied to the current graph."""


class DatasetError(ReproError):
    """Raised when a named dataset cannot be found or generated."""


class SnapshotError(ReproError):
    """Raised when an engine snapshot cannot be taken or restored.

    Covers unsupported vertex-label types, malformed or version-incompatible
    payloads, and restore-time consistency failures (a payload whose solution
    is not installable on its own graph indicates corruption).
    """


class CheckpointError(ReproError):
    """Raised when a replay checkpoint cannot be written, located or resumed.

    Distinct from :class:`SnapshotError`: a checkpoint wraps a snapshot with
    stream provenance (how many operations were consumed, of which stream),
    and resuming against a different stream or algorithm is a checkpoint
    error even when the embedded snapshot itself is intact.
    """


class ExperimentError(ReproError):
    """Raised when an experiment configuration is invalid."""


class SolverTimeoutError(AlgorithmError):
    """Raised when an exact solver exceeds its configured budget.

    An algorithm-level failure (the solver *is* an algorithm giving up), so
    it sits under :class:`AlgorithmError` like every other error an algorithm
    reports about its own run.  ``best_known`` carries the largest solution
    found before the budget ran out, so callers can fall back to it.
    """

    def __init__(self, message: str, best_known: int | None = None) -> None:
        super().__init__(message)
        self.best_known = best_known


class ResilienceError(ReproError):
    """Base class for the resilience subsystem (:mod:`repro.resilience`).

    Covers artifact-integrity failures, exhausted crash-recovery budgets and
    deliberately injected faults — everything the fault-injection /
    supervised-replay machinery raises on top of the ordinary error tree.
    """


class IntegrityError(ResilienceError):
    """Raised when a durable artifact fails its embedded integrity check.

    Checkpoints, snapshots and stream-cache entries carry SHA-256 payload
    digests; a mismatch on load means the bytes on disk are not the bytes
    that were written (torn write, bit rot, tampering) and the artifact must
    never be replayed.  ``source`` names the offending file when known.
    """

    def __init__(self, message: str, source: object = None) -> None:
        super().__init__(message)
        self.source = source


class RecoveryExhaustedError(ResilienceError):
    """Raised when supervised replay runs out of recovery attempts.

    ``attempts`` is how many runs were started; ``history`` holds one entry
    per crash (whatever record type the supervisor collects) so callers can
    report *why* recovery failed, not just that it did.
    """

    def __init__(
        self, message: str, attempts: int = 0, history: tuple = ()
    ) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.history = tuple(history)


class ServiceError(ReproError):
    """Base class for the always-on service layer (:mod:`repro.service`).

    Covers tenant configuration mistakes, protocol violations on the wire
    and requests against tenants that cannot serve them.  Transient
    conditions the client is expected to retry (overload shedding, drain
    rejections, query deadlines) are reported as structured error *replies*
    on the wire rather than exceptions, so a misbehaving client can never
    take the gateway down.
    """


class WireError(ServiceError):
    """Raised when a wire message cannot be encoded or decoded.

    The service speaks newline-delimited JSON; oversized lines, invalid
    JSON, non-object documents and malformed operation encodings all land
    here.  The gateway converts it into an error reply and keeps serving.
    """


class OverloadedError(ServiceError):
    """Raised when a tenant's bounded ingest queue cannot absorb a request.

    ``accepted`` carries the tenant's durable ingest position so the client
    knows exactly where to resume once pressure drops.  The gateway
    translates this into an explicit ``overloaded`` reply — load shedding
    is a contract, not a crash.
    """

    def __init__(self, message: str, accepted: int = 0) -> None:
        super().__init__(message)
        self.accepted = accepted


class InjectedFault(ResilienceError):
    """Raised by a :class:`~repro.resilience.faults.FaultInjector` at a planned fault point.

    Carries the fault ``point`` name and the 1-based ``hit`` count at which
    it fired, so crash-simulation tests can assert exactly which planned
    fault brought a pipeline down.
    """

    def __init__(self, point: str, hit: int) -> None:
        super().__init__(
            f"injected fault at point {point!r} (hit #{hit})"
        )
        self.point = point
        self.hit = hit
