"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish graph-structure errors from algorithm-state errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(ReproError):
    """Base class for errors related to graph structure manipulation."""


class VertexNotFoundError(GraphError, KeyError):
    """Raised when an operation references a vertex that is not in the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class VertexExistsError(GraphError, ValueError):
    """Raised when inserting a vertex that already exists."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} already exists in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError, KeyError):
    """Raised when an operation references an edge that is not in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.edge = (u, v)


class EdgeExistsError(GraphError, ValueError):
    """Raised when inserting an edge that already exists."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) already exists in the graph")
        self.edge = (u, v)


class SelfLoopError(GraphError, ValueError):
    """Raised when inserting a self loop, which independent-set algorithms forbid."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"self loop on vertex {vertex!r} is not allowed")
        self.vertex = vertex


class AlgorithmError(ReproError):
    """Base class for errors raised by maintenance algorithms."""


class SolutionInvariantError(AlgorithmError):
    """Raised when an internal solution invariant is found to be violated.

    The maintenance algorithms can optionally run in a checked mode in which
    independence, maximality and bookkeeping invariants are verified after
    every update.  A violation indicates a bug and is reported through this
    exception rather than silently producing a wrong solution.
    """


class UpdateError(ReproError):
    """Raised when an update operation cannot be applied to the current graph."""


class DatasetError(ReproError):
    """Raised when a named dataset cannot be found or generated."""


class SnapshotError(ReproError):
    """Raised when an engine snapshot cannot be taken or restored.

    Covers unsupported vertex-label types, malformed or version-incompatible
    payloads, and restore-time consistency failures (a payload whose solution
    is not installable on its own graph indicates corruption).
    """


class CheckpointError(ReproError):
    """Raised when a replay checkpoint cannot be written, located or resumed.

    Distinct from :class:`SnapshotError`: a checkpoint wraps a snapshot with
    stream provenance (how many operations were consumed, of which stream),
    and resuming against a different stream or algorithm is a checkpoint
    error even when the embedded snapshot itself is intact.
    """


class ExperimentError(ReproError):
    """Raised when an experiment configuration is invalid."""


class SolverTimeoutError(ReproError):
    """Raised when an exact solver exceeds its configured budget."""

    def __init__(self, message: str, best_known: int | None = None) -> None:
        super().__init__(message)
        self.best_known = best_known
