"""Service chaos drill: SIGKILL mid-ingest, restart, bit-identical recovery.

Run with ``python -m repro.service.smoke`` (exit 0 = pass).  The drill is
the end-to-end counterpart of :mod:`repro.resilience.smoke`'s in-process
scenarios — here the *whole server process* dies, uncleanly:

1. start a real gateway subprocess with two deterministic tenants —
   ``temporal`` (fresh engine fed a wiki-talk temporal window) and
   ``flicker`` (warm-started from a snapshot of the Theorem 3 worst-case
   witness, fed the adversarial flicker stream);
2. ingest a partial prefix into both, wait until each has checkpointed
   (``durable`` advanced), then **SIGKILL** the server mid-stream;
3. restart the server on the same data directory — tenants warm-start from
   their newest valid checkpoint — and let the clients resume from the
   ``applied`` counters, re-sending exactly the lost suffix;
4. drain gracefully and compare each tenant's final engine digest against
   an uninterrupted in-process reference run with identical batch
   boundaries.

Both tenants run in deterministic batching mode (``adaptive=False``), so
"recovered equals uninterrupted" is exact state equality, not just equal
solution sizes.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Sequence

import repro
from repro.experiments.datasets import load_temporal_workload
from repro.experiments.runner import create_algorithm, release_engine
from repro.generators.worst_case import flicker_update_stream
from repro.graphs.dynamic_graph import DynamicGraph
from repro.service.client import ServiceClient, connect_with_retry
from repro.service.config import ServiceConfig, TenantSpec
from repro.service.tenant import engine_digest
from repro.updates.protocol import chunked
from repro.workloads.replay import load_checkpoint
from repro.workloads.snapshot import save_snapshot

TEMPORAL_BATCH = 64
FLICKER_BATCH = 16


def _build_workloads(workdir: Path) -> Dict[str, List]:
    """The two deterministic ingest workloads and the flicker snapshot."""
    _, temporal_stream = load_temporal_workload(
        "quick", "wiki-talk-window", num_events=260
    )
    flicker_graph, flicker_stream = flicker_update_stream(6, rounds=40, seed=11)
    seed_engine = create_algorithm("DyOneSwap", flicker_graph.copy(), None)
    snapshot_path = workdir / "flicker-witness.snap.json"
    save_snapshot(seed_engine, snapshot_path)
    return {
        "temporal": list(temporal_stream),
        "flicker": list(flicker_stream),
        "snapshot": str(snapshot_path),
        "flicker_graph": flicker_graph,
    }


def _write_config(workdir: Path, snapshot_path: str) -> Path:
    config = ServiceConfig(
        data_dir=str(workdir / "data"),
        unix_socket=str(workdir / "service.sock"),
        tenants=(
            TenantSpec(
                name="temporal",
                batch_size=TEMPORAL_BATCH,
                window_max=TEMPORAL_BATCH * 4,
                adaptive=False,
                checkpoint_every=TEMPORAL_BATCH * 2,
                checkpoint_keep=4,
            ),
            TenantSpec(
                name="flicker",
                batch_size=FLICKER_BATCH,
                window_max=FLICKER_BATCH * 4,
                adaptive=False,
                checkpoint_every=FLICKER_BATCH * 2,
                checkpoint_keep=4,
                snapshot=snapshot_path,
            ),
        ),
    )
    path = workdir / "service.json"
    config.save(path)
    return path


def _spawn_server(config_path: Path) -> subprocess.Popen:
    env = dict(os.environ)
    src_root = str(Path(repro.__file__).parents[1])
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--config", str(config_path)],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
    )


def _wait_until_durable(
    client: ServiceClient, tenant: str, target: int, timeout: float = 60.0
) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        reply = client.offset(tenant)
        if reply.get("ok") and reply["durable"] >= target:
            return reply["durable"]
        time.sleep(0.05)
    raise RuntimeError(f"tenant {tenant} never reached durable >= {target}")


def _reference_digest(initial_graph, operations: Sequence, batch: int) -> str:
    """Uninterrupted run with the service's exact batch boundaries."""
    engine = create_algorithm("DyOneSwap", initial_graph.copy(), None)
    try:
        for group in chunked(iter(operations), batch):
            engine.apply_batch(group, coalesce=True)
        return engine_digest(engine)
    finally:
        release_engine(engine)


def main() -> int:
    failures: List[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-service-smoke-") as tmp:
        workdir = Path(tmp)
        workloads = _build_workloads(workdir)
        config_path = _write_config(workdir, workloads["snapshot"])
        socket_path = str(workdir / "service.sock")

        # ---- phase 1: serve, partially ingest, SIGKILL mid-stream ---- #
        server = _spawn_server(config_path)
        try:
            client = connect_with_retry(unix_socket=socket_path)
            with client:
                client.ingest_stream(
                    "temporal",
                    workloads["temporal"][: TEMPORAL_BATCH * 5],
                    chunk=TEMPORAL_BATCH,
                )
                client.ingest_stream(
                    "flicker",
                    workloads["flicker"][: FLICKER_BATCH * 3],
                    chunk=FLICKER_BATCH,
                )
                durable_temporal = _wait_until_durable(
                    client, "temporal", TEMPORAL_BATCH * 2
                )
                durable_flicker = _wait_until_durable(
                    client, "flicker", FLICKER_BATCH * 2
                )
            print(
                "[service-smoke] phase 1: ingested prefixes, durable="
                f"{{'temporal': {durable_temporal}, 'flicker': {durable_flicker}}}; "
                "sending SIGKILL"
            )
            server.send_signal(signal.SIGKILL)
            server.wait(timeout=30)
        finally:
            if server.poll() is None:  # pragma: no cover - cleanup on failure
                server.kill()
                server.wait(timeout=30)

        # ---- phase 2: restart, resume from offsets, drain, compare ---- #
        server = _spawn_server(config_path)
        try:
            client = connect_with_retry(unix_socket=socket_path)
            with client:
                recovered = {
                    name: client.offset(name) for name in ("temporal", "flicker")
                }
                for name, reply in recovered.items():
                    if not reply.get("ok") or reply["applied"] != reply["durable"]:
                        failures.append(
                            f"{name}: warm start did not resume from the "
                            f"checkpointed offset: {reply}"
                        )
                    if reply["applied"] == 0:
                        failures.append(
                            f"{name}: warm start lost all durable progress"
                        )
                client.ingest_stream(
                    "temporal", workloads["temporal"], chunk=TEMPORAL_BATCH
                )
                client.ingest_stream(
                    "flicker", workloads["flicker"], chunk=FLICKER_BATCH
                )
                digests = {
                    "temporal": client.digest("temporal"),
                    "flicker": client.digest("flicker"),
                }
                client.shutdown()
            server.wait(timeout=60)
        finally:
            if server.poll() is None:  # pragma: no cover - cleanup on failure
                server.kill()
                server.wait(timeout=30)

        expected = {
            "temporal": _reference_digest(
                DynamicGraph(), workloads["temporal"], TEMPORAL_BATCH
            ),
            "flicker": _reference_digest(
                workloads["flicker_graph"], workloads["flicker"], FLICKER_BATCH
            ),
        }
        for name, reply in digests.items():
            if not reply.get("ok"):
                failures.append(f"{name}: digest request failed: {reply}")
            elif reply["digest"] != expected[name]:
                failures.append(
                    f"{name}: recovered digest {reply['digest'][:16]}… differs "
                    f"from uninterrupted reference {expected[name][:16]}…"
                )
            else:
                print(
                    f"[service-smoke] {name}: SIGKILL + restart recovered "
                    f"bit-identically ({reply['applied']} ops, "
                    f"digest {reply['digest'][:16]}…)"
                )

        # Final checkpoints from the graceful drain must load and verify.
        for name in ("temporal", "flicker"):
            directory = workdir / "data" / name
            newest = sorted(directory.glob("*.ckpt.json"))
            if not newest:
                failures.append(f"{name}: drain left no final checkpoint")
                continue
            try:
                load_checkpoint(newest[-1])
            except Exception as exc:  # pragma: no cover - failure reporting
                failures.append(f"{name}: final checkpoint corrupt: {exc}")

    if failures:
        for failure in failures:
            print(f"[service-smoke] FAIL: {failure}")
        return 1
    print("[service-smoke] PASS: bit-identical recovery across SIGKILL")
    return 0


if __name__ == "__main__":
    sys.exit(main())
