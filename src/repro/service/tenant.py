"""One supervised tenant: engine, bounded queue, durability, recovery.

A :class:`Tenant` owns one maintenance engine inside the gateway's event
loop.  Everything that touches the engine happens in that loop (batch
application is synchronous between awaits), so queries always observe a
batch boundary — a k-maximal, snapshot-clean solution.

Responsibilities, and how they compose:

* **Admission** (:meth:`offer`): a bounded queue with exactly-once sequence
  accounting.  Clients tag operations with absolute 1-based positions; gaps
  are rejected with the expected position, full duplicates acknowledged
  idempotently, overlapping resends trimmed to their novel tail.  A batch
  that would overflow ``queue_cap`` is shed whole
  (:class:`~repro.exceptions.OverloadedError`) — all-or-nothing, so the
  sequence space never fragments.
* **Backpressure** (:meth:`_window`): under load the serve loop widens the
  coalescer batch window in whole-``batch_size`` steps toward
  ``window_max`` *before* the queue ever sheds — degradation order is
  "coalesce harder, then refuse loudly", never silent loss.
* **Durability**: checkpoints on the operation-interval and/or wall-clock
  policy of :class:`~repro.workloads.replay.CheckpointConfig`, written at
  batch boundaries, carrying a chained stream fingerprint (resumable across
  process death, unlike a hashing cursor's in-memory state) and service
  metadata so a warm start can refuse a config-mismatched checkpoint.
* **Supervision** (:meth:`run`): a crashed engine (injected fault, I/O
  error, integrity violation) is released (worker pools and shared memory
  freed deterministically — see
  :func:`~repro.experiments.runner.release_engine`), restored from the
  newest *valid* checkpoint and brought back to the exact pre-crash state
  by replaying the in-memory replay buffer with the **original batch
  boundaries** — recovery is bit-identical and invisible to clients, while
  other tenants keep serving.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from collections import deque
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Sequence

from repro.exceptions import OverloadedError, ServiceError
from repro.experiments.runner import create_algorithm, release_engine
from repro.graphs.dynamic_graph import DynamicGraph
from repro.resilience.faults import SERVICE_INGEST, SERVICE_SHUTDOWN, trip
from repro.resilience.supervisor import RECOVERABLE, RetryPolicy
from repro.service.config import TenantSpec
from repro.updates.operations import UpdateOperation
from repro.updates.protocol import encode_operation
from repro.workloads.replay import (
    latest_valid_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.workloads.snapshot import algorithm_to_payload, load_snapshot

#: Anchor of the chained stream fingerprint.  Unlike the experiment
#: runner's :class:`~repro.updates.protocol.StreamCursor` (whose incremental
#: hash object dies with the process), the chain ``fp_n = sha256(fp_{n-1}
#: || op_n)`` is resumable from the hex digest stored in any checkpoint.
FINGERPRINT_SEED = hashlib.sha256(b"repro-service/1").hexdigest()

#: Marker stored in checkpoint metadata so foreign checkpoints (e.g. an
#: experiment run sharing a directory) are never warm-started from.
SERVICE_FORMAT = "repro-service/1"


def chain_fingerprint(fingerprint: str, operation: UpdateOperation) -> str:
    """Advance the chained fingerprint by one operation."""
    entry = json.dumps(encode_operation(operation), separators=(",", ":"))
    return hashlib.sha256(
        bytes.fromhex(fingerprint) + entry.encode("utf-8")
    ).hexdigest()


def engine_digest(algorithm) -> str:
    """Canonical SHA-256 of the engine's full snapshot payload.

    Two engines with bit-identical state (graph, solution, counters) hash
    equal; anything less does not.  This is the equality the chaos drill
    asserts between a crash-recovered tenant and an uninterrupted run.
    """
    payload = algorithm_to_payload(algorithm)
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    ).hexdigest()


class Tenant:
    """One engine instance under supervision inside the gateway loop."""

    def __init__(
        self,
        spec: TenantSpec,
        data_dir,
        *,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.spec = spec
        self.data_dir = Path(data_dir)
        self.retry = retry or RetryPolicy()
        self.checkpoints = spec.checkpoint_config(self.data_dir)
        self.engine = None
        self.status = "starting"
        #: Absolute op counters: ``accepted`` ops admitted to the queue,
        #: ``applied`` ops applied to the engine, ``durable`` ops covered by
        #: the newest checkpoint.  Invariant: durable <= applied <= accepted.
        self.accepted = 0
        self.applied = 0
        self.durable = 0
        self.fingerprint = FINGERPRINT_SEED
        self._durable_fp = FINGERPRINT_SEED
        self._attempt = 0
        self.final_checkpoint: Optional[Path] = None
        self.stats: Dict[str, int] = {
            "sheds": 0,
            "crashes": 0,
            "restarts": 0,
            "checkpoints": 0,
            "batches": 0,
            "peak_queue": 0,
            "peak_window": 0,
        }
        self.crashes: List[str] = []
        self._initial_size = 0
        self._pending: Deque[UpdateOperation] = deque()
        #: Batches applied since the last checkpoint, with their original
        #: boundaries — the recovery replay re-applies exactly these groups,
        #: which is what makes in-process recovery bit-identical even in
        #: adaptive (timing-dependent) windowing mode.
        self._replay: Deque[List[UpdateOperation]] = deque()
        self._subscribers: List[Callable[[Dict], None]] = []
        self._work = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self.ready = asyncio.Event()
        self._drain_requested = False
        self._flush_requested = False
        self._paused = False
        self._last_checkpoint_time = time.monotonic()

    # ------------------------------------------------------------------ #
    # Admission (called by the gateway, in-loop)
    # ------------------------------------------------------------------ #
    def offer(self, operations: Sequence[UpdateOperation], seq: int) -> Dict:
        """Admit ``operations`` starting at absolute position ``seq`` (1-based).

        Returns the counter triple on success.  Raises
        :class:`~repro.exceptions.ServiceError` on a sequence gap or when
        not accepting, :class:`~repro.exceptions.OverloadedError` when the
        bounded queue cannot absorb the novel suffix (all-or-nothing: no
        partial admission, the client retries the whole request later).
        """
        trip(SERVICE_INGEST)
        if self.status in ("draining", "stopped", "failed"):
            raise ServiceError(f"tenant {self.spec.name!r} is {self.status}")
        if seq < 1:
            raise ServiceError("seq must be >= 1")
        expected = self.accepted + 1
        if seq > expected:
            gap = ServiceError(f"sequence gap: got seq {seq}, expected {expected}")
            # Machine-readable resume hint; the gateway copies it into the
            # error reply so the client can re-send from the right position.
            gap.expected = expected
            raise gap
        novel = list(operations[expected - seq :])
        if not novel:
            # Full duplicate of already-admitted operations: idempotent ack.
            return self.offsets()
        if len(self._pending) + len(novel) > self.spec.queue_cap:
            self.stats["sheds"] += 1
            raise OverloadedError(
                f"tenant {self.spec.name!r} queue is full "
                f"({len(self._pending)}/{self.spec.queue_cap}); retry later",
                accepted=self.accepted,
            )
        self._pending.extend(novel)
        self.accepted += len(novel)
        self.stats["peak_queue"] = max(self.stats["peak_queue"], len(self._pending))
        self._idle.clear()
        self._work.set()
        return self.offsets()

    def offsets(self) -> Dict:
        """The counter triple plus identity — the client resume protocol."""
        return {
            "accepted": self.accepted,
            "applied": self.applied,
            "durable": self.durable,
            "fingerprint": self.fingerprint,
            "status": self.status,
            "queue_depth": len(self._pending),
        }

    # ------------------------------------------------------------------ #
    # Queries (in-loop; the engine is never observed mid-batch)
    # ------------------------------------------------------------------ #
    def in_solution(self, label) -> bool:
        """Membership of ``label`` in the current k-maximal solution."""
        if self.engine is None:
            raise ServiceError(f"tenant {self.spec.name!r} engine is down")
        graph = self.engine.graph
        if not graph.has_vertex(label):
            return False
        return bool(self.engine._in_sol[graph.slot_of(label)])

    def solution(self) -> List:
        if self.engine is None:
            raise ServiceError(f"tenant {self.spec.name!r} engine is down")
        return sorted(self.engine.solution(), key=repr)

    def solution_size(self) -> int:
        if self.engine is None:
            raise ServiceError(f"tenant {self.spec.name!r} engine is down")
        return self.engine.solution_size

    def digest(self) -> str:
        if self.engine is None:
            raise ServiceError(f"tenant {self.spec.name!r} engine is down")
        return engine_digest(self.engine)

    def what_if(self, operations: Sequence[UpdateOperation]) -> Dict:
        """Answer a hypothetical batch without touching the live engine.

        Forks the engine (cheap copy-on-write — O(live-delta), not a deep
        copy), applies ``operations`` to the fork through the coalescing
        batch engine, and reports the resulting solution size plus the
        membership delta; the fork is then discarded.  The live engine, its
        counters and its digest are byte-unchanged afterwards
        (regression-pinned by the service suite) — a ``what_if`` is
        invisible to ingest, recovery and checkpointing.
        """
        if self.engine is None:
            raise ServiceError(f"tenant {self.spec.name!r} engine is down")
        # ShardedEngine delegates fork() to its inner engine; the throwaway
        # branch is always a plain single-process fork.
        engine = getattr(self.engine, "snapshot_delegate", self.engine)
        before = set(engine.solution())
        fork = engine.fork()
        if operations:
            fork.apply_batch(list(operations), coalesce=True)
        after = set(fork.solution())
        return {
            "base_size": len(before),
            "size": len(after),
            "added": sorted(after - before, key=repr),
            "removed": sorted(before - after, key=repr),
            "applied": self.applied,
        }

    def subscribe(self, callback: Callable[[Dict], None]) -> None:
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[Dict], None]) -> None:
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    # ------------------------------------------------------------------ #
    # Control (gateway / tests)
    # ------------------------------------------------------------------ #
    async def flush(self) -> None:
        """Apply everything admitted so far, including a partial tail batch."""
        self._flush_requested = True
        self._work.set()
        await self._idle.wait()

    def request_drain(self) -> None:
        self._drain_requested = True
        self._work.set()

    def pause(self) -> None:
        """Test hook: stop applying batches (admission continues) — the
        deterministic way to fill the bounded queue in backpressure tests."""
        self._paused = True

    def resume(self) -> None:
        self._paused = False
        self._work.set()

    # ------------------------------------------------------------------ #
    # Supervision loop
    # ------------------------------------------------------------------ #
    async def run(self) -> None:
        """Bootstrap, serve, and absorb recoverable crashes until drained.

        The attempt counter resets whenever a batch lands successfully
        (:meth:`_apply_batch`), so ``max_attempts`` bounds *consecutive*
        failures, not lifetime crashes of a long-lived tenant.
        """
        bootstrapped = False
        while True:
            try:
                if self.engine is None:
                    # First boot goes through the warm-start priority chain;
                    # every later rebuild must go through _recover, which
                    # preserves the admission counters and replays the
                    # buffered batches to the exact pre-crash state.
                    if bootstrapped:
                        self._recover()
                        self.stats["restarts"] += 1
                    else:
                        self._bootstrap()
                        bootstrapped = True
                self.status = "serving"
                self.ready.set()
                await self._serve()
                return
            except asyncio.CancelledError:
                self._release()
                raise
            except RECOVERABLE as exc:
                self.ready.clear()
                self.status = "recovering"
                self.stats["crashes"] += 1
                self.crashes.append(f"{type(exc).__name__}: {exc}")
                self._release()
                self._attempt += 1
                if self._attempt >= self.retry.max_attempts:
                    self.status = "failed"
                    self._idle.set()  # never strand a flush() waiter
                    return
                await asyncio.sleep(self.retry.delay(self._attempt))
            except BaseException:
                self.status = "failed"
                self.ready.clear()
                self._release()
                self._idle.set()
                raise

    def _release(self) -> None:
        """Free the engine's external resources *now* (shared memory, worker
        pools), not whenever the garbage collector gets around to it."""
        if self.engine is not None:
            engine, self.engine = self.engine, None
            try:
                release_engine(engine)
            except Exception:  # pragma: no cover - best-effort cleanup
                pass

    def _bootstrap(self) -> None:
        """Warm-start priority: newest valid checkpoint > snapshot > fresh."""
        spec = self.spec
        checkpoint_path = latest_valid_checkpoint(
            self.checkpoints.directory, spec.algorithm
        )
        if checkpoint_path is not None:
            restored = load_checkpoint(checkpoint_path)
            meta = restored.metadata
            if meta.get("service") != SERVICE_FORMAT or meta.get("tenant") != spec.name:
                raise ServiceError(
                    f"checkpoint {checkpoint_path} was not written by service "
                    f"tenant {spec.name!r}; refusing to warm-start from it"
                )
            if restored.batch_size != spec.batch_size:
                raise ServiceError(
                    f"checkpoint {checkpoint_path} was written with "
                    f"batch_size={restored.batch_size}; tenant {spec.name!r} is "
                    f"configured with batch_size={spec.batch_size} — resuming "
                    "would shift every batch boundary"
                )
            self.engine = restored.restore(self._factory)
            self.applied = self.accepted = self.durable = restored.processed
            self.fingerprint = restored.stream_identity or FINGERPRINT_SEED
            self._durable_fp = self.fingerprint
            self._initial_size = restored.initial_size
        elif spec.snapshot is not None:
            self.engine = load_snapshot(spec.snapshot, self._factory)
            self._initial_size = self.engine.solution_size
        else:
            self.engine = create_algorithm(
                spec.algorithm, DynamicGraph(), None, **dict(spec.options)
            )
            self._initial_size = self.engine.solution_size
        self._last_checkpoint_time = time.monotonic()

    def _factory(self, graph, solution, **snapshot_options):
        merged = dict(self.spec.options)
        merged.update(snapshot_options)
        return create_algorithm(self.spec.algorithm, graph, solution, **merged)

    def _recover(self) -> None:
        """Rebuild the exact pre-crash engine state.

        Restore from the newest valid checkpoint (corrupt ones are
        quarantined by discovery), then re-apply the replay buffer with its
        original batch boundaries.  The buffer covers precisely the applied
        suffix past ``durable``, so the rebuilt engine matches the crashed
        one bit for bit; queued-but-unapplied operations are still in
        ``_pending`` and flow through the normal serve loop afterwards.
        """
        replayed = list(self._replay)
        before_applied = self.applied
        before_fingerprint = self.fingerprint
        checkpoint_path = latest_valid_checkpoint(
            self.checkpoints.directory, self.spec.algorithm
        )
        if checkpoint_path is not None:
            restored = load_checkpoint(checkpoint_path)
            if restored.processed != self.durable:
                raise ServiceError(
                    f"tenant {self.spec.name!r}: newest checkpoint covers "
                    f"{restored.processed} ops but the replay buffer starts at "
                    f"{self.durable} — cannot reconstruct the crashed state"
                )
            self.engine = restored.restore(self._factory)
        elif self.durable == 0:
            if self.spec.snapshot is not None:
                self.engine = load_snapshot(self.spec.snapshot, self._factory)
            else:
                self.engine = create_algorithm(
                    self.spec.algorithm,
                    DynamicGraph(),
                    None,
                    **dict(self.spec.options),
                )
        else:
            raise ServiceError(
                f"tenant {self.spec.name!r}: no valid checkpoint survives but "
                f"{self.durable} ops were durable — cannot recover"
            )
        self.applied = self.durable
        self.fingerprint = self._durable_fp
        for batch in replayed:
            self.engine.apply_batch(batch, coalesce=True)
            for operation in batch:
                self.fingerprint = chain_fingerprint(self.fingerprint, operation)
            self.applied += len(batch)
        if self.applied != before_applied or self.fingerprint != before_fingerprint:
            raise ServiceError(
                f"tenant {self.spec.name!r}: replayed state diverged "
                f"(applied {self.applied} vs {before_applied})"
            )
        self._last_checkpoint_time = time.monotonic()

    # ------------------------------------------------------------------ #
    # Serve loop
    # ------------------------------------------------------------------ #
    def _window(self) -> int:
        """Current batch window, in operations.

        Deterministic mode: always exactly ``batch_size``.  Adaptive mode:
        grows with queue depth in whole-batch steps up to ``window_max`` —
        the "grow the coalescer window before shedding" backpressure rule.
        """
        spec = self.spec
        if not spec.adaptive:
            return spec.batch_size
        full_batches = len(self._pending) // spec.batch_size
        window = max(spec.batch_size, full_batches * spec.batch_size)
        return min(spec.window_max, window)

    def _wall_timeout(self) -> Optional[float]:
        if self.checkpoints.every_seconds is None:
            return None
        elapsed = time.monotonic() - self._last_checkpoint_time
        return max(0.0, self.checkpoints.every_seconds - elapsed)

    async def _serve(self) -> None:
        while True:
            if not self._has_work():
                self._work.clear()
                if not self._pending:
                    self._idle.set()
                timeout = self._wall_timeout()
                try:
                    if timeout is None:
                        await self._work.wait()
                    else:
                        await asyncio.wait_for(self._work.wait(), timeout + 0.01)
                except asyncio.TimeoutError:
                    pass
            if self._paused and not self._drain_requested:
                self._work.clear()
                await self._work.wait()
                continue
            if self._drain_requested:
                self._drain()
                return
            progressed = False
            while len(self._pending) >= self.spec.batch_size and not self._paused:
                self._apply_batch(self._take(self._window()))
                progressed = True
                # Yield between batches: queries interleave at batch
                # boundaries instead of starving behind a deep queue.
                await asyncio.sleep(0)
                if self._drain_requested:
                    self._drain()
                    return
            if self._flush_requested:
                if self._pending and not self._paused:
                    self._apply_batch(self._take(len(self._pending)))
                    progressed = True
                if not self._pending:
                    self._flush_requested = False
            if not self._pending:
                self._idle.set()
            if not progressed and self._wall_checkpoint_due():
                self._write_checkpoint()

    def _has_work(self) -> bool:
        if self._drain_requested or self._flush_requested:
            return True
        if self._paused:
            return False
        if len(self._pending) >= self.spec.batch_size:
            return True
        return self._wall_checkpoint_due()

    def _take(self, count: int) -> List[UpdateOperation]:
        count = min(count, len(self._pending))
        return [self._pending.popleft() for _ in range(count)]

    def _apply_batch(self, batch: List[UpdateOperation]) -> None:
        if not batch:
            return
        self.stats["peak_window"] = max(self.stats["peak_window"], len(batch))
        before = self.engine.solution() if self._subscribers else None
        try:
            self.engine.apply_batch(batch, coalesce=True)
        except BaseException:
            # The batch is not yet in the replay buffer: put it back at the
            # front of the queue so the recovered engine re-applies it with
            # the same boundary (nothing admitted is ever lost to a crash).
            self._pending.extendleft(reversed(batch))
            raise
        for operation in batch:
            self.fingerprint = chain_fingerprint(self.fingerprint, operation)
        self.applied += len(batch)
        self.stats["batches"] += 1
        self._replay.append(batch)
        self._on_progress()
        if before is not None:
            after = self.engine.solution()
            added = sorted(after - before, key=repr)
            removed = sorted(before - after, key=repr)
            if added or removed:
                event = {
                    "event": "delta",
                    "tenant": self.spec.name,
                    "added": added,
                    "removed": removed,
                    "applied": self.applied,
                }
                for callback in list(self._subscribers):
                    callback(event)
        if self._checkpoint_due():
            self._write_checkpoint()

    def _on_progress(self) -> None:
        """A batch landed: consecutive-failure accounting starts over."""
        self._attempt = 0

    def _checkpoint_due(self) -> bool:
        every = self.checkpoints.every
        if every is not None and self.applied - self.durable >= every:
            return True
        return self._wall_checkpoint_due()

    def _wall_checkpoint_due(self) -> bool:
        seconds = self.checkpoints.every_seconds
        if seconds is None or self.applied == self.durable:
            return False
        return time.monotonic() - self._last_checkpoint_time >= seconds

    def _write_checkpoint(self) -> Path:
        """Persist the engine at the current batch boundary (atomic write,
        embedded digest); the replay buffer is trimmed only after commit."""
        path = save_checkpoint(
            self.engine,
            self.checkpoints,
            algorithm_name=self.spec.algorithm,
            processed=self.applied,
            initial_size=self._initial_size,
            elapsed_seconds=0.0,
            dataset=f"service:{self.spec.name}",
            stream_description=f"service-ingest:{self.spec.name}",
            stream_identity=self.fingerprint,
            batch_size=self.spec.batch_size,
            metadata={
                "service": SERVICE_FORMAT,
                "tenant": self.spec.name,
                "adaptive": self.spec.adaptive,
                "queue_cap": self.spec.queue_cap,
                "window_max": self.spec.window_max,
            },
        )
        self.durable = self.applied
        self._durable_fp = self.fingerprint
        self._replay.clear()
        self._last_checkpoint_time = time.monotonic()
        self.stats["checkpoints"] += 1
        return path

    def _drain(self) -> None:
        """Flush every queued operation, then write and verify the final
        checkpoint.  The ``service.shutdown`` fault point fires *before* the
        final write — an injected crash here is absorbed by the supervision
        loop and the drain retried, so shutdown remains graceful even under
        fault injection."""
        self.status = "draining"
        while self._pending:
            self._apply_batch(self._take(self._window()))
        trip(SERVICE_SHUTDOWN)
        path = self._write_checkpoint() if self.applied else None
        if path is not None:
            # Read-back verification: the final checkpoint must load and
            # pass its integrity check before we report a clean drain.
            load_checkpoint(path)
        self.final_checkpoint = path
        self._release()
        self.status = "stopped"
        self._idle.set()
