"""The always-on gateway: NDJSON listeners over supervised tenants.

:class:`MISGateway` binds TCP and/or Unix-socket listeners and serves
newline-delimited JSON requests against its tenants.  Design rules:

* **One loop, no locks.**  Every engine touch happens in the gateway's
  event loop; batch application is synchronous between awaits, so every
  request observes a batch boundary (k-maximal solution, snapshot-clean
  engine).
* **Errors degrade, never detach.**  A malformed line, an unknown command,
  an injected fault or an overloaded queue produce an ``{"ok": false,
  "error": ...}`` reply on the same connection; only transport-level
  failures close it.  An injected ``service.query``/``service.ingest``
  fault is indistinguishable from any other degraded reply — the server
  survives, the client retries.
* **Graceful drain** (:meth:`shutdown`): mark draining (new ingests are
  refused with ``"draining"`` while health keeps answering) → drain every
  tenant — in-flight batches complete, the final checkpoint is written and
  integrity-verified; an injected ``service.shutdown`` crash is absorbed by
  the tenant's supervision loop and the drain retried — → only then close
  listeners and connections.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.exceptions import (
    InjectedFault,
    OverloadedError,
    ServiceError,
    WireError,
)
from repro.resilience.faults import SERVICE_QUERY, trip
from repro.service.config import ServiceConfig
from repro.service.tenant import Tenant
from repro.updates.wire import MAX_LINE_BYTES, decode_line, encode_line, operations_from_wire

#: Slack over the payload cap so a maximal client line still fits the
#: reader's internal separator handling.
_READER_LIMIT = MAX_LINE_BYTES + 1024


@dataclass(frozen=True)
class TenantReport:
    """Per-tenant outcome of a graceful shutdown."""

    name: str
    status: str
    durable: int
    final_checkpoint: Optional[str]


@dataclass(frozen=True)
class ShutdownReport:
    """What the drain accomplished, per tenant, before sockets closed."""

    tenants: Tuple[TenantReport, ...] = field(default_factory=tuple)

    @property
    def clean(self) -> bool:
        return all(report.status == "stopped" for report in self.tenants)


class MISGateway:
    """Serve dynamic-MIS update streams and queries to many clients."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.tenants: Dict[str, Tenant] = {}
        self._tasks: Dict[str, asyncio.Task] = {}
        self._servers: List[asyncio.AbstractServer] = []
        self._connections: List[asyncio.StreamWriter] = []
        self._draining = False
        self._closed = asyncio.Event()
        self.port: Optional[int] = None
        self.unix_path: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Create tenants, launch their supervision tasks, bind listeners."""
        data_dir = Path(self.config.data_dir)
        data_dir.mkdir(parents=True, exist_ok=True)
        for spec in self.config.tenants:
            tenant = Tenant(spec, data_dir, retry=self.config.retry)
            self.tenants[spec.name] = tenant
            self._tasks[spec.name] = asyncio.get_running_loop().create_task(
                tenant.run(), name=f"tenant:{spec.name}"
            )
        if self.config.port is not None:
            server = await asyncio.start_server(
                self._handle_connection,
                host=self.config.host,
                port=self.config.port,
                limit=_READER_LIMIT,
            )
            self._servers.append(server)
            self.port = server.sockets[0].getsockname()[1]
        if self.config.unix_socket is not None:
            path = Path(self.config.unix_socket)
            path.parent.mkdir(parents=True, exist_ok=True)
            if path.exists():
                path.unlink()
            server = await asyncio.start_unix_server(
                self._handle_connection, path=str(path), limit=_READER_LIMIT
            )
            self._servers.append(server)
            self.unix_path = str(path)

    async def wait_ready(self, timeout: Optional[float] = None) -> None:
        """Block until every tenant is serving (bootstrap complete).

        If a tenant's supervision task dies (or exhausts its retries)
        before ever becoming ready, the tenant's own startup error is
        raised here instead of waiting out the timeout.
        """
        loop = asyncio.get_running_loop()
        deadline = None if timeout is None else loop.time() + timeout
        for name, tenant in self.tenants.items():
            task = self._tasks[name]
            waiter = asyncio.ensure_future(tenant.ready.wait())
            try:
                remaining = None if deadline is None else deadline - loop.time()
                done, _pending = await asyncio.wait(
                    {waiter, task},
                    timeout=remaining,
                    return_when=asyncio.FIRST_COMPLETED,
                )
            finally:
                waiter.cancel()
            if waiter in done:
                continue
            if task in done:
                exc = task.exception()
                if exc is not None:
                    raise exc
                raise ServiceError(f"tenant {name!r} stopped before becoming ready")
            raise asyncio.TimeoutError(f"tenant {name!r} not ready in time")

    async def wait_closed(self) -> None:
        """Block until a shutdown (signal- or command-initiated) completes."""
        await self._closed.wait()

    async def shutdown(self) -> ShutdownReport:
        """Graceful drain: finish work, persist, verify, then close sockets."""
        if self._draining:
            await self._closed.wait()
            return self._report()
        self._draining = True
        for tenant in self.tenants.values():
            tenant.request_drain()
        for name, task in self._tasks.items():
            try:
                await asyncio.wait_for(task, self.config.drain_timeout)
            except asyncio.TimeoutError:
                task.cancel()
            except Exception:
                # The tenant failed terminally; its status already says so.
                pass
        # Only after every tenant has drained (final checkpoints written and
        # read-back verified) do the listeners and connections go away.
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        for writer in list(self._connections):
            writer.close()
        self._servers.clear()
        if self.unix_path and Path(self.unix_path).exists():
            Path(self.unix_path).unlink()
        self._closed.set()
        return self._report()

    def _report(self) -> ShutdownReport:
        return ShutdownReport(
            tenants=tuple(
                TenantReport(
                    name=name,
                    status=tenant.status,
                    durable=tenant.durable,
                    final_checkpoint=(
                        str(tenant.final_checkpoint)
                        if tenant.final_checkpoint
                        else None
                    ),
                )
                for name, tenant in self.tenants.items()
            )
        )

    # ------------------------------------------------------------------ #
    # Connections
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.append(writer)
        subscriptions: List[Tuple[Tenant, object]] = []
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    # Over-long line or torn transport: unrecoverable framing.
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                reply = await self._dispatch(line, writer, subscriptions)
                try:
                    writer.write(encode_line(reply))
                    await writer.drain()
                except (ConnectionError, RuntimeError):
                    break
                if reply.get("bye"):
                    break
        finally:
            for tenant, callback in subscriptions:
                tenant.unsubscribe(callback)
            if writer in self._connections:
                self._connections.remove(writer)
            try:
                writer.close()
            except RuntimeError:  # pragma: no cover - loop already closing
                pass

    async def _dispatch(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        subscriptions: List,
    ) -> Dict:
        try:
            request = decode_line(line)
            command = request.get("cmd")
            handler = getattr(self, f"_cmd_{command}", None)
            if handler is None:
                raise ServiceError(f"unknown command {command!r}")
            reply = await handler(request, writer, subscriptions)
            reply.setdefault("ok", True)
            return reply
        except OverloadedError as exc:
            # Explicit load shedding: the client learns exactly how far the
            # server got and retries the whole request later.
            return {"ok": False, "error": "overloaded", "accepted": exc.accepted}
        except InjectedFault as exc:
            return {"ok": False, "error": "injected-fault", "detail": str(exc)}
        except asyncio.TimeoutError:
            return {"ok": False, "error": "timeout"}
        except (WireError, ServiceError) as exc:
            reply = {"ok": False, "error": str(exc)}
            expected = getattr(exc, "expected", None)
            if expected is not None:
                reply["expected"] = expected
            return reply

    def _tenant(self, request: Dict) -> Tenant:
        name = request.get("tenant")
        tenant = self.tenants.get(name)
        if tenant is None:
            raise ServiceError(f"unknown tenant {name!r}")
        return tenant

    async def _await_ready(self, tenant: Tenant, request: Dict) -> None:
        """Wait for the tenant's engine (it may be mid-recovery), bounded by
        the request deadline."""
        timeout = request.get("timeout_ms")
        timeout = (
            self.config.query_timeout if timeout is None else float(timeout) / 1000.0
        )
        await asyncio.wait_for(tenant.ready.wait(), timeout)

    # ------------------------------------------------------------------ #
    # Commands
    # ------------------------------------------------------------------ #
    async def _cmd_ingest(self, request: Dict, writer, subscriptions) -> Dict:
        if self._draining:
            raise ServiceError("draining")
        tenant = self._tenant(request)
        seq = request.get("seq")
        if not isinstance(seq, int):
            raise ServiceError("ingest needs an integer 'seq' (1-based)")
        operations = operations_from_wire(request.get("ops", []))
        return dict(tenant.offer(operations, seq))

    async def _cmd_query(self, request: Dict, writer, subscriptions) -> Dict:
        trip(SERVICE_QUERY)
        tenant = self._tenant(request)
        await self._await_ready(tenant, request)
        vertex = request.get("vertex")
        if vertex is None:
            raise ServiceError("query needs a 'vertex'")
        return {
            "vertex": vertex,
            "in_solution": tenant.in_solution(vertex),
            "applied": tenant.applied,
        }

    async def _cmd_solution(self, request: Dict, writer, subscriptions) -> Dict:
        trip(SERVICE_QUERY)
        tenant = self._tenant(request)
        await self._await_ready(tenant, request)
        return {"solution": tenant.solution(), "applied": tenant.applied}

    async def _cmd_size(self, request: Dict, writer, subscriptions) -> Dict:
        trip(SERVICE_QUERY)
        tenant = self._tenant(request)
        await self._await_ready(tenant, request)
        return {"size": tenant.solution_size(), "applied": tenant.applied}

    async def _cmd_offset(self, request: Dict, writer, subscriptions) -> Dict:
        tenant = self._tenant(request)
        return dict(tenant.offsets())

    async def _cmd_flush(self, request: Dict, writer, subscriptions) -> Dict:
        tenant = self._tenant(request)
        await self._await_ready(tenant, request)
        await asyncio.wait_for(tenant.flush(), self.config.drain_timeout)
        return dict(tenant.offsets())

    async def _cmd_checkpoint(self, request: Dict, writer, subscriptions) -> Dict:
        tenant = self._tenant(request)
        await self._await_ready(tenant, request)
        await asyncio.wait_for(tenant.flush(), self.config.drain_timeout)
        path = tenant._write_checkpoint() if tenant.applied else None
        return {"checkpoint": str(path) if path else None, **tenant.offsets()}

    async def _cmd_digest(self, request: Dict, writer, subscriptions) -> Dict:
        tenant = self._tenant(request)
        await self._await_ready(tenant, request)
        await asyncio.wait_for(tenant.flush(), self.config.drain_timeout)
        return {"digest": tenant.digest(), "applied": tenant.applied}

    async def _cmd_what_if(self, request: Dict, writer, subscriptions) -> Dict:
        trip(SERVICE_QUERY)
        tenant = self._tenant(request)
        await self._await_ready(tenant, request)
        # Flush first so the hypothetical branches off the state every
        # admitted operation is part of — and so the engine sits at a batch
        # boundary, the precondition for forking it.
        await asyncio.wait_for(tenant.flush(), self.config.drain_timeout)
        operations = operations_from_wire(request.get("ops", []))
        return dict(tenant.what_if(operations))

    async def _cmd_subscribe(self, request: Dict, writer, subscriptions) -> Dict:
        tenant = self._tenant(request)

        def push(event: Dict) -> None:
            try:
                writer.write(encode_line(event))
            except (ConnectionError, RuntimeError, WireError):
                tenant.unsubscribe(push)

        tenant.subscribe(push)
        subscriptions.append((tenant, push))
        return {"subscribed": tenant.spec.name}

    async def _cmd_unsubscribe(self, request: Dict, writer, subscriptions) -> Dict:
        tenant = self._tenant(request)
        for entry in list(subscriptions):
            if entry[0] is tenant:
                tenant.unsubscribe(entry[1])
                subscriptions.remove(entry)
        return {"unsubscribed": tenant.spec.name}

    async def _cmd_health(self, request: Dict, writer, subscriptions) -> Dict:
        # Health always answers, drain or not: liveness is exactly what a
        # draining service still owes its operators.
        return {
            "status": "draining" if self._draining else "serving",
            "tenants": {
                name: tenant.status for name, tenant in self.tenants.items()
            },
        }

    async def _cmd_ready(self, request: Dict, writer, subscriptions) -> Dict:
        ready = not self._draining and all(
            tenant.ready.is_set() for tenant in self.tenants.values()
        )
        return {"ready": ready}

    async def _cmd_stats(self, request: Dict, writer, subscriptions) -> Dict:
        if request.get("tenant") is not None:
            tenant = self._tenant(request)
            return {
                "stats": dict(tenant.stats),
                "crashes": list(tenant.crashes),
                **tenant.offsets(),
            }
        return {
            "tenants": {
                name: {"stats": dict(tenant.stats), **tenant.offsets()}
                for name, tenant in self.tenants.items()
            }
        }

    async def _cmd_pause(self, request: Dict, writer, subscriptions) -> Dict:
        self._tenant(request).pause()
        return {"paused": request.get("tenant")}

    async def _cmd_resume(self, request: Dict, writer, subscriptions) -> Dict:
        self._tenant(request).resume()
        return {"resumed": request.get("tenant")}

    async def _cmd_shutdown(self, request: Dict, writer, subscriptions) -> Dict:
        # Reply first, then drain: the requester gets an acknowledgement
        # before its transport goes away with the listeners.
        asyncio.get_running_loop().create_task(self.shutdown())
        return {"bye": True, "status": "draining"}
