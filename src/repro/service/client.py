"""Synchronous NDJSON client and an in-process service harness.

:class:`ServiceClient` is a blocking socket client for the gateway — the
shape a shell script, a test or a benchmark wants.  It speaks the same
wire module as the server, transparently queues pushed subscription events
while waiting for replies, and implements the at-least-once ingest resume
protocol (:meth:`ingest_stream`): query ``offset``, send from
``applied + 1``, retry ``overloaded`` and ``injected-fault`` replies with
linear backoff.

:class:`ServiceThread` runs a full gateway in a daemon thread with its own
event loop — the harness the test-suite and the in-process resilience smoke
scenario use (the library's dev environment has no async test runner, and a
real socket round-trip exercises strictly more than a coroutine call).
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence

from repro.exceptions import ServiceError
from repro.service.config import ServiceConfig
from repro.service.gateway import MISGateway, ShutdownReport
from repro.updates.operations import UpdateOperation
from repro.updates.wire import decode_line, encode_line, operations_to_wire


class ServiceClient:
    """Blocking NDJSON client for one gateway connection."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        unix_socket: Optional[str] = None,
        timeout: float = 30.0,
    ) -> None:
        if (port is None) == (unix_socket is None):
            raise ServiceError("connect with exactly one of port / unix_socket")
        if unix_socket is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(unix_socket)
        else:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self.events: List[Dict] = []

    # ------------------------------------------------------------------ #
    def request(self, document: Dict) -> Dict:
        """One request/reply round-trip; pushed events are queued aside."""
        self._file.write(encode_line(document))
        self._file.flush()
        while True:
            line = self._file.readline()
            if not line:
                raise ServiceError("connection closed by server")
            message = decode_line(line)
            if "event" in message:
                self.events.append(message)
                continue
            return message

    def next_event(self) -> Dict:
        """Pop the oldest pushed event, reading the socket if none queued."""
        while not self.events:
            line = self._file.readline()
            if not line:
                raise ServiceError("connection closed by server")
            message = decode_line(line)
            if "event" in message:
                self.events.append(message)
        return self.events.pop(0)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Command helpers
    # ------------------------------------------------------------------ #
    def ingest(
        self, tenant: str, operations: Sequence[UpdateOperation], seq: int
    ) -> Dict:
        return self.request(
            {
                "cmd": "ingest",
                "tenant": tenant,
                "seq": seq,
                "ops": operations_to_wire(operations),
            }
        )

    def query(self, tenant: str, vertex, timeout_ms: Optional[int] = None) -> Dict:
        message = {"cmd": "query", "tenant": tenant, "vertex": vertex}
        if timeout_ms is not None:
            message["timeout_ms"] = timeout_ms
        return self.request(message)

    def solution(self, tenant: str) -> Dict:
        return self.request({"cmd": "solution", "tenant": tenant})

    def offset(self, tenant: str) -> Dict:
        return self.request({"cmd": "offset", "tenant": tenant})

    def flush(self, tenant: str) -> Dict:
        return self.request({"cmd": "flush", "tenant": tenant})

    def checkpoint(self, tenant: str) -> Dict:
        return self.request({"cmd": "checkpoint", "tenant": tenant})

    def digest(self, tenant: str) -> Dict:
        return self.request({"cmd": "digest", "tenant": tenant})

    def what_if(
        self, tenant: str, operations: Sequence[UpdateOperation]
    ) -> Dict:
        """Hypothetical query: solution size/delta after ``operations``,
        answered on a discarded copy-on-write fork — the live tenant engine
        and its digest are unchanged."""
        return self.request(
            {
                "cmd": "what_if",
                "tenant": tenant,
                "ops": operations_to_wire(operations),
            }
        )

    def subscribe(self, tenant: str) -> Dict:
        return self.request({"cmd": "subscribe", "tenant": tenant})

    def health(self) -> Dict:
        return self.request({"cmd": "health"})

    def ready(self) -> Dict:
        return self.request({"cmd": "ready"})

    def stats(self, tenant: Optional[str] = None) -> Dict:
        message: Dict = {"cmd": "stats"}
        if tenant is not None:
            message["tenant"] = tenant
        return self.request(message)

    def pause(self, tenant: str) -> Dict:
        return self.request({"cmd": "pause", "tenant": tenant})

    def resume(self, tenant: str) -> Dict:
        return self.request({"cmd": "resume", "tenant": tenant})

    def shutdown(self) -> Dict:
        return self.request({"cmd": "shutdown"})

    # ------------------------------------------------------------------ #
    def ingest_stream(
        self,
        tenant: str,
        operations: Iterable[UpdateOperation],
        *,
        chunk: int = 64,
        max_retries: int = 200,
        backoff: float = 0.02,
    ) -> Dict:
        """At-least-once delivery of a whole stream.

        Resumes from the server's ``applied`` counter (so a restarted server
        receives exactly the suffix it lost), retries ``overloaded`` and
        ``injected-fault`` replies with linear backoff, and re-syncs on
        sequence-gap errors via the ``expected`` hint.
        """
        pending = list(operations)
        reply = self.offset(tenant)
        if not reply.get("ok", False):
            raise ServiceError(f"offset failed: {reply}")
        position = int(reply["applied"])  # resend anything not yet applied
        retries = 0
        while position < len(pending):
            batch = pending[position : position + chunk]
            reply = self.ingest(tenant, batch, position + 1)
            if reply.get("ok"):
                position += len(batch)
                retries = 0
                continue
            retries += 1
            if retries > max_retries:
                raise ServiceError(f"ingest stalled at {position}: {reply}")
            if "expected" in reply:
                position = int(reply["expected"]) - 1
            time.sleep(backoff * min(retries, 10))
        return self.offset(tenant)


def connect_with_retry(
    *,
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    unix_socket: Optional[str] = None,
    attempts: int = 100,
    delay: float = 0.05,
    timeout: float = 30.0,
) -> ServiceClient:
    """Connect to a gateway that may still be booting (subprocess drills)."""
    last: Optional[Exception] = None
    for _ in range(attempts):
        try:
            return ServiceClient(
                host=host, port=port, unix_socket=unix_socket, timeout=timeout
            )
        except (OSError, ServiceError) as exc:
            last = exc
            time.sleep(delay)
    raise ServiceError(f"could not connect to service: {last}")


class ServiceThread:
    """A gateway running in a daemon thread with a private event loop.

    Synchronous callers (tests, the smoke scenario) talk to it through
    :class:`ServiceClient` over a real socket; :meth:`stop` performs the
    graceful drain and returns the :class:`~repro.service.gateway.ShutdownReport`.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.gateway: Optional[MISGateway] = None
        self.report: Optional[ShutdownReport] = None
        self.error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )

    def start(self, timeout: float = 30.0) -> "ServiceThread":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ServiceError("service thread did not become ready")
        if self.error is not None:
            raise ServiceError(f"service failed to start: {self.error}")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        except BaseException as exc:  # pragma: no cover - surfaced via .error
            self.error = exc
            self._ready.set()
        finally:
            loop.close()

    async def _main(self) -> None:
        self._stop = asyncio.Event()
        gateway = MISGateway(self.config)
        try:
            await gateway.start()
            await gateway.wait_ready(timeout=30.0)
        except BaseException as exc:
            self.error = exc
            self._ready.set()
            await gateway.shutdown()
            return
        self.gateway = gateway
        self._ready.set()
        await self._stop.wait()
        self.report = await gateway.shutdown()

    @property
    def port(self) -> Optional[int]:
        return self.gateway.port if self.gateway else None

    @property
    def unix_path(self) -> Optional[str]:
        return self.gateway.unix_path if self.gateway else None

    def client(self, timeout: float = 30.0) -> ServiceClient:
        if self.unix_path:
            return ServiceClient(unix_socket=self.unix_path, timeout=timeout)
        return ServiceClient(
            host=self.config.host, port=self.port, timeout=timeout
        )

    def call(self, func, *args, timeout: float = 30.0):
        """Run ``func(gateway, *args)`` inside the service loop (test hook)."""
        if self._loop is None or self.gateway is None:
            raise ServiceError("service thread is not running")

        async def runner():
            result = func(self.gateway, *args)
            if asyncio.iscoroutine(result):
                result = await result
            return result

        future = asyncio.run_coroutine_threadsafe(runner(), self._loop)
        return future.result(timeout)

    def stop(self, timeout: float = 60.0) -> Optional[ShutdownReport]:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # pragma: no cover - loop already gone
                pass
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise ServiceError("service thread did not stop in time")
        if self.error is not None:
            raise ServiceError(f"service thread failed: {self.error}")
        return self.report

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        try:
            self.stop()
        except ServiceError:
            if exc_info[0] is None:
                raise
