"""Service configuration: tenants, listeners, durability and retry policy.

A :class:`ServiceConfig` fully describes one gateway process: where it
listens (TCP and/or Unix socket), which tenants it hosts, and the shared
supervision/drain policy.  A :class:`TenantSpec` describes one tenant: the
engine it runs, its batching/backpressure envelope and its durability
policy.  Both are frozen dataclasses validated eagerly in ``__post_init__``
— a service must refuse a bad configuration at start-up, not discover it on
the first overloaded burst.

Batching invariants enforced here (the service's determinism contract
depends on them):

* ``window_max`` is a whole multiple of ``batch_size`` — the adaptive
  backpressure window only ever grows in whole-batch steps, so batch
  boundaries remain ``batch_size``-aligned;
* ``checkpoint_every`` is a whole multiple of ``batch_size`` — checkpoints
  land exactly on batch boundaries, where the solution is k-maximal and the
  engine is snapshot-clean;
* ``queue_cap`` admits at least one full batch — a queue that could never
  fill a batch would deadlock the serve loop.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.exceptions import ServiceError
from repro.experiments.runner import available_algorithms, supports_snapshots
from repro.resilience.supervisor import RetryPolicy
from repro.workloads.replay import CheckpointConfig

PathLike = Union[str, Path]

#: Tenant names become checkpoint-directory names; keep them filesystem- and
#: wire-safe.
_TENANT_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")

#: Wall-clock checkpoint cadence used when a tenant sets no durability
#: interval at all — an always-on service must never run indefinitely
#: without a resumable state on disk.
DEFAULT_CHECKPOINT_SECONDS = 30.0


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: an engine instance with batching and durability policy.

    Attributes
    ----------
    name:
        Tenant identifier; doubles as the checkpoint subdirectory name.
    algorithm:
        Registered algorithm name; must be snapshot-capable (a tenant that
        cannot be checkpointed could never be crash-recovered).
    batch_size:
        The coalescer batch unit.  In deterministic mode every applied batch
        is exactly this size (the tail only flushes on demand), so the
        solution trajectory is a pure function of the operation sequence.
    queue_cap:
        Bounded ingest queue, in operations.  An ingest that would push the
        queue past the cap is shed whole with an ``overloaded`` reply.
    window_max:
        Upper bound on the adaptive batch window (multiple of
        ``batch_size``).  Under backpressure the serve loop widens the
        window toward this bound before the queue ever sheds.
    adaptive:
        ``True`` (live default): window grows with queue depth — higher
        throughput, timing-dependent batch boundaries.  ``False``: fixed
        ``batch_size`` windows — bit-reproducible trajectories, the mode the
        chaos drill asserts bit-identical recovery in.
    checkpoint_every / checkpoint_every_seconds / checkpoint_keep:
        Durability policy (see :class:`~repro.workloads.replay.CheckpointConfig`);
        with neither interval set the tenant falls back to
        :data:`DEFAULT_CHECKPOINT_SECONDS` of wall clock.
    snapshot:
        Optional engine snapshot to warm-start from when no checkpoint
        exists yet (first boot of a pre-loaded tenant).
    options:
        Extra ``create_algorithm`` options (``k``, ``workers``, ...).
    """

    name: str
    algorithm: str = "DyOneSwap"
    batch_size: int = 64
    queue_cap: int = 4096
    window_max: int = 512
    adaptive: bool = True
    checkpoint_every: Optional[int] = None
    checkpoint_every_seconds: Optional[float] = None
    checkpoint_keep: int = 3
    snapshot: Optional[str] = None
    options: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not _TENANT_NAME.match(self.name):
            raise ServiceError(
                f"tenant name {self.name!r} must match {_TENANT_NAME.pattern}"
            )
        if self.algorithm not in available_algorithms():
            raise ServiceError(
                f"tenant {self.name!r}: unknown algorithm {self.algorithm!r}"
            )
        if not supports_snapshots(self.algorithm):
            raise ServiceError(
                f"tenant {self.name!r}: algorithm {self.algorithm!r} does not "
                "support snapshots, so it can be neither checkpointed nor "
                "crash-recovered"
            )
        if self.batch_size < 1:
            raise ServiceError(f"tenant {self.name!r}: batch_size must be >= 1")
        if self.queue_cap < self.batch_size:
            raise ServiceError(
                f"tenant {self.name!r}: queue_cap {self.queue_cap} cannot "
                f"admit one batch of {self.batch_size}"
            )
        if self.window_max < self.batch_size or self.window_max % self.batch_size:
            raise ServiceError(
                f"tenant {self.name!r}: window_max {self.window_max} must be a "
                f"positive multiple of batch_size {self.batch_size}"
            )
        if self.checkpoint_every is not None and (
            self.checkpoint_every < 1 or self.checkpoint_every % self.batch_size
        ):
            raise ServiceError(
                f"tenant {self.name!r}: checkpoint_every {self.checkpoint_every} "
                f"must be a positive multiple of batch_size {self.batch_size} "
                "so checkpoints land on batch boundaries"
            )
        if (
            self.checkpoint_every_seconds is not None
            and self.checkpoint_every_seconds <= 0
        ):
            raise ServiceError(
                f"tenant {self.name!r}: checkpoint_every_seconds must be positive"
            )
        if self.checkpoint_keep < 1:
            raise ServiceError(f"tenant {self.name!r}: checkpoint_keep must be >= 1")

    def checkpoint_config(self, data_dir: PathLike) -> CheckpointConfig:
        """The tenant's durability policy rooted under ``data_dir``."""
        every_seconds = self.checkpoint_every_seconds
        if self.checkpoint_every is None and every_seconds is None:
            every_seconds = DEFAULT_CHECKPOINT_SECONDS
        return CheckpointConfig(
            directory=Path(data_dir) / self.name,
            every=self.checkpoint_every,
            keep=self.checkpoint_keep,
            every_seconds=every_seconds,
        )

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "algorithm": self.algorithm,
            "batch_size": self.batch_size,
            "queue_cap": self.queue_cap,
            "window_max": self.window_max,
            "adaptive": self.adaptive,
            "checkpoint_every": self.checkpoint_every,
            "checkpoint_every_seconds": self.checkpoint_every_seconds,
            "checkpoint_keep": self.checkpoint_keep,
            "snapshot": self.snapshot,
            "options": dict(self.options),
        }


@dataclass(frozen=True)
class ServiceConfig:
    """One gateway process: listeners, tenants, supervision and drain policy."""

    data_dir: str
    tenants: Tuple[TenantSpec, ...]
    host: str = "127.0.0.1"
    port: Optional[int] = None
    unix_socket: Optional[str] = None
    query_timeout: float = 5.0
    drain_timeout: float = 30.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ServiceError("a service needs at least one tenant")
        names = [spec.name for spec in self.tenants]
        if len(set(names)) != len(names):
            raise ServiceError(f"duplicate tenant names in {names}")
        if self.port is None and self.unix_socket is None:
            raise ServiceError(
                "a service needs a listener: set port (0 for ephemeral) "
                "and/or unix_socket"
            )
        if self.query_timeout <= 0 or self.drain_timeout <= 0:
            raise ServiceError("query_timeout and drain_timeout must be positive")

    def tenant(self, name: str) -> TenantSpec:
        for spec in self.tenants:
            if spec.name == name:
                return spec
        raise ServiceError(f"unknown tenant {name!r}")

    def to_dict(self) -> Dict:
        return {
            "data_dir": self.data_dir,
            "host": self.host,
            "port": self.port,
            "unix_socket": self.unix_socket,
            "query_timeout": self.query_timeout,
            "drain_timeout": self.drain_timeout,
            "retry": {
                "max_attempts": self.retry.max_attempts,
                "base_delay": self.retry.base_delay,
                "cap": self.retry.cap,
                "seed": self.retry.seed,
            },
            "tenants": [spec.to_dict() for spec in self.tenants],
        }

    @classmethod
    def from_dict(cls, document: Dict) -> "ServiceConfig":
        if not isinstance(document, dict):
            raise ServiceError(
                f"service config must be a JSON object, got {type(document).__name__}"
            )
        try:
            tenants = tuple(
                TenantSpec(
                    name=entry["name"],
                    algorithm=entry.get("algorithm", "DyOneSwap"),
                    batch_size=entry.get("batch_size", 64),
                    queue_cap=entry.get("queue_cap", 4096),
                    window_max=entry.get("window_max", 512),
                    adaptive=entry.get("adaptive", True),
                    checkpoint_every=entry.get("checkpoint_every"),
                    checkpoint_every_seconds=entry.get("checkpoint_every_seconds"),
                    checkpoint_keep=entry.get("checkpoint_keep", 3),
                    snapshot=entry.get("snapshot"),
                    options=dict(entry.get("options") or {}),
                )
                for entry in document.get("tenants", ())
            )
            retry_doc = document.get("retry") or {}
            return cls(
                data_dir=document["data_dir"],
                tenants=tenants,
                host=document.get("host", "127.0.0.1"),
                port=document.get("port"),
                unix_socket=document.get("unix_socket"),
                query_timeout=document.get("query_timeout", 5.0),
                drain_timeout=document.get("drain_timeout", 30.0),
                retry=RetryPolicy(
                    max_attempts=retry_doc.get("max_attempts", 5),
                    base_delay=retry_doc.get("base_delay", 0.05),
                    cap=retry_doc.get("cap", 2.0),
                    seed=retry_doc.get("seed", 0),
                ),
            )
        except (KeyError, TypeError) as exc:
            raise ServiceError(f"invalid service config: {exc}") from exc

    @classmethod
    def from_file(cls, path: PathLike) -> "ServiceConfig":
        path = Path(path)
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise ServiceError(f"cannot read service config {path}: {exc}") from exc
        return cls.from_dict(document)

    def save(self, path: PathLike) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8"
        )
