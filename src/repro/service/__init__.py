"""Always-on service layer: a supervised async gateway over tenant engines.

The batch pipeline answers "replay this stream"; this package answers
"keep answering while the stream never ends".  One gateway process hosts
many *tenants* — independent engine instances with their own bounded ingest
queue, durability policy and supervision — behind TCP and/or Unix-socket
listeners speaking newline-delimited JSON (:mod:`repro.updates.wire`).

The load-shedding contract, in degradation order: under backpressure a
tenant first *widens its coalescer batch window* (coalesce harder, same
memory envelope), and only when the bounded queue is truly full refuses
with an explicit ``overloaded`` reply carrying the resume position — never
silent loss, never unbounded buffering.  A crashed tenant engine is
restored from its newest valid checkpoint and replayed to the exact
pre-crash state while every other tenant keeps serving; a killed *process*
warm-starts from disk and clients resume from the ``offset`` counters.
Graceful shutdown drains queues, writes and verifies final checkpoints,
and only then closes the sockets.

Entry points: ``python -m repro.service --config service.json`` runs a
server; :class:`~repro.service.client.ServiceClient` talks to one;
``python -m repro.service.smoke`` is the SIGKILL chaos drill asserting
bit-identical recovery.
"""

from repro.service.config import (
    DEFAULT_CHECKPOINT_SECONDS,
    ServiceConfig,
    TenantSpec,
)
from repro.service.gateway import MISGateway, ShutdownReport, TenantReport
from repro.service.client import ServiceClient, ServiceThread, connect_with_retry
from repro.service.tenant import (
    FINGERPRINT_SEED,
    SERVICE_FORMAT,
    Tenant,
    chain_fingerprint,
    engine_digest,
)

__all__ = [
    "DEFAULT_CHECKPOINT_SECONDS",
    "ServiceConfig",
    "TenantSpec",
    "MISGateway",
    "ShutdownReport",
    "TenantReport",
    "ServiceClient",
    "ServiceThread",
    "connect_with_retry",
    "Tenant",
    "FINGERPRINT_SEED",
    "SERVICE_FORMAT",
    "chain_fingerprint",
    "engine_digest",
]
