"""CLI entry point: ``python -m repro.service --config service.json``.

Runs one gateway process until SIGTERM/SIGINT, then drains gracefully
(flush queues, final verified checkpoints, close listeners).  The
``parse_args`` / ``load_config`` / ``serve`` split keeps every piece unit-
testable without spawning a process.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import List, Optional, Sequence

from repro.service.config import ServiceConfig
from repro.service.gateway import MISGateway


def parse_args(argv: Optional[Sequence[str]] = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run the always-on dynamic-MIS gateway.",
    )
    parser.add_argument("--config", required=True, help="service config JSON")
    parser.add_argument("--port", type=int, default=None, help="override TCP port")
    parser.add_argument("--unix", default=None, help="override Unix socket path")
    parser.add_argument("--data-dir", default=None, help="override data directory")
    return parser.parse_args(argv)


def load_config(args: argparse.Namespace) -> ServiceConfig:
    config = ServiceConfig.from_file(args.config)
    overrides = {}
    if args.port is not None:
        overrides["port"] = args.port
    if args.unix is not None:
        overrides["unix_socket"] = args.unix
    if args.data_dir is not None:
        overrides["data_dir"] = args.data_dir
    if overrides:
        document = config.to_dict()
        document.update(overrides)
        config = ServiceConfig.from_dict(document)
    return config


def _banner(message: str) -> None:
    print(message, flush=True)


async def serve(config: ServiceConfig, *, banner=_banner) -> None:
    """Start a gateway and run until a termination signal, then drain."""
    gateway = MISGateway(config)
    await gateway.start()
    await gateway.wait_ready()
    listeners: List[str] = []
    if gateway.port is not None:
        listeners.append(f"{config.host}:{gateway.port}")
    if gateway.unix_path is not None:
        listeners.append(f"unix:{gateway.unix_path}")
    banner(f"repro-service listening on {', '.join(listeners)}")
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    # Wake on a termination signal *or* on a client-issued shutdown command
    # (the gateway closes itself in that case; shutdown() is idempotent).
    waiters = [
        asyncio.ensure_future(stop.wait()),
        asyncio.ensure_future(gateway.wait_closed()),
    ]
    try:
        await asyncio.wait(waiters, return_when=asyncio.FIRST_COMPLETED)
    finally:
        for waiter in waiters:
            waiter.cancel()
    report = await gateway.shutdown()
    for tenant in report.tenants:
        banner(
            f"repro-service drained tenant {tenant.name}: {tenant.status}, "
            f"durable={tenant.durable}"
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    config = load_config(parse_args(argv))
    asyncio.run(serve(config))
    return 0


if __name__ == "__main__":
    sys.exit(main())
